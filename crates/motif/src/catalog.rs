//! The catalog of the 26 h-motifs and the pattern → motif lookup table.

use serde::{Deserialize, Serialize};

use crate::cardinalities::RegionCardinalities;
use crate::pattern::{Pattern, BIT_AB, BIT_ABC, BIT_A_ONLY, BIT_CA};

/// Number of h-motifs over three hyperedges.
pub const NUM_MOTIFS: usize = 26;

/// A 1-based h-motif identifier in `1..=26`.
pub type MotifId = u8;

/// Whether all three hyperedges of a motif's instances pairwise overlap
/// (*closed*) or one pair is disjoint (*open*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MotifClass {
    /// All three pairs of hyperedges overlap.
    Closed,
    /// Exactly one pair of hyperedges is disjoint.
    Open,
}

/// Metadata for one of the 26 h-motifs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HMotif {
    /// 1-based identifier (`1..=26`).
    pub id: MotifId,
    /// Canonical emptiness pattern.
    pub pattern: Pattern,
    /// Open/closed classification.
    pub class: MotifClass,
    /// Whether the triple intersection region is non-empty.
    pub has_triple_core: bool,
    /// Number of non-empty regions (1–7).
    pub num_nonempty_regions: u32,
    /// Human-readable description of the canonical pattern.
    pub description: String,
}

impl HMotif {
    /// Whether this motif is open.
    pub fn is_open(&self) -> bool {
        self.class == MotifClass::Open
    }

    /// Whether this motif is closed.
    pub fn is_closed(&self) -> bool {
        self.class == MotifClass::Closed
    }
}

/// The catalog of all 26 h-motifs together with an O(1) lookup table from any
/// of the 128 raw patterns to its motif identifier (if the pattern is valid).
///
/// Construction follows the deterministic numbering documented in DESIGN.md
/// §3.1:
///
/// - **1–16**: closed motifs with a non-empty triple intersection, ordered by
///   (number of non-empty regions, canonical code) ascending; motif 16 is the
///   all-seven-regions pattern.
/// - **17–22**: open motifs. 17 and 18 are the "hyperedge with two disjoint
///   subsets" patterns (17: the subsets cover the host, 18: the host keeps
///   private nodes); 19–22 follow by (regions, code) ascending, making 22 the
///   fully generic open pattern.
/// - **23–26**: closed motifs with an empty triple intersection, ordered by
///   the number of non-empty private regions (0–3).
#[derive(Debug, Clone)]
pub struct MotifCatalog {
    motifs: Vec<HMotif>,
    /// Raw pattern bits → motif id (0 = invalid pattern).
    lookup: [MotifId; Pattern::NUM_RAW],
}

impl Default for MotifCatalog {
    fn default() -> Self {
        Self::new()
    }
}

impl MotifCatalog {
    /// Builds the catalog. The result is deterministic; constructing it takes
    /// a few microseconds, so most callers simply build one per algorithm
    /// invocation (or share one with `lazy` initialization).
    pub fn new() -> Self {
        // Collect canonical representatives of all valid patterns.
        let mut canonicals: Vec<Pattern> = Pattern::all_raw()
            .filter(|p| p.is_valid())
            .map(|p| p.canonical())
            .collect();
        canonicals.sort_unstable();
        canonicals.dedup();
        debug_assert_eq!(canonicals.len(), NUM_MOTIFS);

        let group_of = |p: &Pattern| -> u8 {
            if p.is_closed() {
                if p.region(BIT_ABC) {
                    0 // closed with triple core → motifs 1-16
                } else {
                    2 // closed without triple core → motifs 23-26
                }
            } else {
                1 // open → motifs 17-22
            }
        };

        let mut group_closed_core: Vec<Pattern> = Vec::new();
        let mut group_open: Vec<Pattern> = Vec::new();
        let mut group_closed_no_core: Vec<Pattern> = Vec::new();
        for p in canonicals {
            match group_of(&p) {
                0 => group_closed_core.push(p),
                1 => group_open.push(p),
                _ => group_closed_no_core.push(p),
            }
        }
        let order_key = |p: &Pattern| (p.num_nonempty_regions(), p.bits());
        group_closed_core.sort_by_key(order_key);
        group_closed_no_core.sort_by_key(order_key);

        // Open group: the two "host + two disjoint subsets" patterns come
        // first (17, 18), then the rest by (regions, code).
        let subset_pattern_exact =
            Pattern::from_regions(false, false, false, true, false, true, false).canonical();
        let subset_pattern_private =
            Pattern::from_regions(true, false, false, true, false, true, false).canonical();
        let mut open_rest: Vec<Pattern> = group_open
            .iter()
            .copied()
            .filter(|p| *p != subset_pattern_exact && *p != subset_pattern_private)
            .collect();
        open_rest.sort_by_key(order_key);
        let mut group_open_ordered = vec![subset_pattern_exact, subset_pattern_private];
        group_open_ordered.extend(open_rest);

        let mut motifs = Vec::with_capacity(NUM_MOTIFS);
        let push = |pattern: Pattern, motifs: &mut Vec<HMotif>| {
            let id = (motifs.len() + 1) as MotifId;
            motifs.push(HMotif {
                id,
                pattern,
                class: if pattern.is_closed() {
                    MotifClass::Closed
                } else {
                    MotifClass::Open
                },
                has_triple_core: pattern.region(BIT_ABC),
                num_nonempty_regions: pattern.num_nonempty_regions(),
                description: pattern.describe(),
            });
        };
        for p in group_closed_core {
            push(p, &mut motifs);
        }
        for p in group_open_ordered {
            push(p, &mut motifs);
        }
        for p in group_closed_no_core {
            push(p, &mut motifs);
        }
        debug_assert_eq!(motifs.len(), NUM_MOTIFS);

        // Build the 128-entry lookup table: every valid raw pattern maps to
        // the id of its canonical representative.
        let mut lookup = [0 as MotifId; Pattern::NUM_RAW];
        for raw in Pattern::all_raw() {
            if raw.is_valid() {
                let canonical = raw.canonical();
                let id = motifs
                    .iter()
                    .find(|m| m.pattern == canonical)
                    .expect("every valid canonical pattern is in the catalog")
                    .id;
                lookup[raw.bits() as usize] = id;
            }
        }

        Self { motifs, lookup }
    }

    /// All motifs in id order.
    pub fn motifs(&self) -> &[HMotif] {
        &self.motifs
    }

    /// The motif with identifier `id` (`1..=26`).
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn motif(&self, id: MotifId) -> &HMotif {
        &self.motifs[(id - 1) as usize]
    }

    /// Maps a raw emptiness pattern to its motif id, or `None` if the pattern
    /// is not a valid h-motif (disconnected, empty edge, or duplicate edges).
    #[inline]
    pub fn classify_pattern(&self, pattern: Pattern) -> Option<MotifId> {
        match self.lookup[pattern.bits() as usize] {
            0 => None,
            id => Some(id),
        }
    }

    /// Maps region cardinalities to a motif id.
    #[inline]
    pub fn classify(&self, regions: &RegionCardinalities) -> Option<MotifId> {
        self.classify_pattern(regions.pattern())
    }

    /// Convenience: classify from the quantities available to the counting
    /// algorithms (sizes, pairwise intersections and the triple
    /// intersection), per Lemma 2.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn classify_from_intersections(
        &self,
        size_a: usize,
        size_b: usize,
        size_c: usize,
        int_ab: usize,
        int_bc: usize,
        int_ca: usize,
        int_abc: usize,
    ) -> Option<MotifId> {
        RegionCardinalities::from_intersections(
            size_a, size_b, size_c, int_ab, int_bc, int_ca, int_abc,
        )
        .and_then(|r| self.classify(&r))
    }

    /// Identifiers of the open motifs (17..=22 under this catalog's
    /// numbering).
    pub fn open_motif_ids(&self) -> Vec<MotifId> {
        self.motifs
            .iter()
            .filter(|m| m.is_open())
            .map(|m| m.id)
            .collect()
    }

    /// Identifiers of the closed motifs.
    pub fn closed_motif_ids(&self) -> Vec<MotifId> {
        self.motifs
            .iter()
            .filter(|m| m.is_closed())
            .map(|m| m.id)
            .collect()
    }

    /// Whether motif `id` is open.
    #[inline]
    pub fn is_open(&self, id: MotifId) -> bool {
        self.motif(id).is_open()
    }
}

/// Returns `true` if the canonical pattern is one of the two "a hyperedge and
/// its two disjoint subsets" motifs highlighted in Section 4.2 of the paper.
pub fn is_subset_star_pattern(pattern: Pattern) -> bool {
    let canonical = pattern.canonical();
    let exact = Pattern::from_regions(false, false, false, true, false, true, false).canonical();
    let private = Pattern::from_regions(true, false, false, true, false, true, false).canonical();
    canonical == exact || canonical == private
}

/// Convenience used by documentation and experiments: the canonical pattern
/// with every region non-empty (motif 16 in this catalog).
pub fn all_regions_pattern() -> Pattern {
    Pattern::from_bits(
        (1 << BIT_A_ONLY)
            | (1 << crate::pattern::BIT_B_ONLY)
            | (1 << crate::pattern::BIT_C_ONLY)
            | (1 << BIT_AB)
            | (1 << crate::pattern::BIT_BC)
            | (1 << BIT_CA)
            | (1 << BIT_ABC),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PERMUTATIONS;

    #[test]
    fn catalog_has_26_motifs() {
        let catalog = MotifCatalog::new();
        assert_eq!(catalog.motifs().len(), 26);
        let ids: Vec<MotifId> = catalog.motifs().iter().map(|m| m.id).collect();
        assert_eq!(ids, (1..=26).collect::<Vec<_>>());
    }

    #[test]
    fn group_structure_matches_paper() {
        let catalog = MotifCatalog::new();
        // 17-22 are open, everything else closed.
        for motif in catalog.motifs() {
            if (17..=22).contains(&motif.id) {
                assert!(motif.is_open(), "motif {} should be open", motif.id);
            } else {
                assert!(motif.is_closed(), "motif {} should be closed", motif.id);
            }
        }
        // 1-16 have a triple core; 23-26 are closed without one.
        for motif in catalog.motifs() {
            if motif.id <= 16 {
                assert!(motif.has_triple_core);
            }
            if motif.id >= 23 {
                assert!(!motif.has_triple_core);
                assert!(motif.is_closed());
            }
        }
        assert_eq!(catalog.open_motif_ids(), vec![17, 18, 19, 20, 21, 22]);
        assert_eq!(catalog.closed_motif_ids().len(), 20);
    }

    #[test]
    fn motif_16_has_all_regions() {
        let catalog = MotifCatalog::new();
        assert_eq!(catalog.motif(16).num_nonempty_regions, 7);
        assert_eq!(catalog.motif(16).pattern, all_regions_pattern().canonical());
    }

    #[test]
    fn motifs_17_18_are_subset_stars() {
        let catalog = MotifCatalog::new();
        assert!(is_subset_star_pattern(catalog.motif(17).pattern));
        assert!(is_subset_star_pattern(catalog.motif(18).pattern));
        assert!(!is_subset_star_pattern(catalog.motif(19).pattern));
        assert_eq!(catalog.motif(17).num_nonempty_regions, 2);
        assert_eq!(catalog.motif(18).num_nonempty_regions, 3);
    }

    #[test]
    fn motif_22_is_generic_open() {
        let catalog = MotifCatalog::new();
        assert_eq!(catalog.motif(22).num_nonempty_regions, 5);
        assert!(catalog.motif(22).is_open());
    }

    #[test]
    fn motifs_23_to_26_ordered_by_private_regions() {
        let catalog = MotifCatalog::new();
        for (offset, expected_regions) in (23u8..=26).zip(3u32..=6) {
            assert_eq!(
                catalog.motif(offset).num_nonempty_regions,
                expected_regions,
                "motif {offset}"
            );
        }
    }

    #[test]
    fn classification_covers_exactly_valid_patterns() {
        let catalog = MotifCatalog::new();
        let mut classified = 0usize;
        for p in Pattern::all_raw() {
            match catalog.classify_pattern(p) {
                Some(id) => {
                    assert!(p.is_valid());
                    assert!((1..=26).contains(&id));
                    classified += 1;
                }
                None => assert!(!p.is_valid()),
            }
        }
        // Orbits have different sizes, so just check that a substantial number
        // of raw patterns are valid and that classification is consistent
        // with canonicalization.
        assert!(classified > 26);
        for p in Pattern::all_raw().filter(|p| p.is_valid()) {
            assert_eq!(
                catalog.classify_pattern(p),
                catalog.classify_pattern(p.canonical())
            );
        }
    }

    #[test]
    fn classification_is_permutation_invariant() {
        let catalog = MotifCatalog::new();
        for p in Pattern::all_raw().filter(|p| p.is_valid()) {
            let id = catalog.classify_pattern(p);
            for &perm in &PERMUTATIONS {
                assert_eq!(catalog.classify_pattern(p.permute(perm)), id);
            }
        }
    }

    #[test]
    fn classify_from_intersections_example() {
        let catalog = MotifCatalog::new();
        // Figure 2(b): e1={L,K,F}, e2={L,H,K}, e3={B,G,L}.
        // |e1|=3, |e2|=3, |e3|=3, |e1∩e2|=2, |e2∩e3|=1, |e3∩e1|=1, |e1∩e2∩e3|=1.
        let id = catalog
            .classify_from_intersections(3, 3, 3, 2, 1, 1, 1)
            .unwrap();
        let motif = catalog.motif(id);
        assert!(motif.is_closed());
        assert!(motif.has_triple_core);
        // {e1,e2,e4}: e4={S,R,F}; |e1∩e4|=1, |e2∩e4|=0, |e1∩e2|=2, triple=0 → open.
        let id = catalog
            .classify_from_intersections(3, 3, 3, 2, 0, 1, 0)
            .unwrap();
        assert!(catalog.motif(id).is_open());
        // Inconsistent quantities yield None.
        assert!(catalog
            .classify_from_intersections(1, 1, 1, 5, 0, 0, 0)
            .is_none());
    }

    #[test]
    fn duplicate_pattern_not_classified() {
        let catalog = MotifCatalog::new();
        let duplicate = Pattern::from_regions(false, false, true, true, false, false, true);
        assert!(catalog.classify_pattern(duplicate).is_none());
    }

    #[test]
    fn catalog_lookup_matches_linear_search() {
        let catalog = MotifCatalog::new();
        for p in Pattern::all_raw().filter(|p| p.is_valid()) {
            let canonical = p.canonical();
            let expected = catalog
                .motifs()
                .iter()
                .find(|m| m.pattern == canonical)
                .map(|m| m.id);
            assert_eq!(catalog.classify_pattern(p), expected);
        }
    }

    #[test]
    fn descriptions_are_nonempty_and_unique() {
        let catalog = MotifCatalog::new();
        let mut seen = std::collections::BTreeSet::new();
        for motif in catalog.motifs() {
            assert!(!motif.description.is_empty());
            assert!(
                seen.insert(motif.description.clone()),
                "duplicate description"
            );
        }
    }
}
