//! Exact sizes of the seven Venn regions of three hyperedges.
//!
//! Lemma 2 of the paper shows that, given the three hyperedge sizes, the
//! three pairwise intersection sizes (available from the projected graph) and
//! the triple intersection size, all seven region cardinalities follow by
//! inclusion–exclusion in O(1). [`RegionCardinalities::from_intersections`]
//! implements exactly those formulas.

use serde::{Deserialize, Serialize};

use crate::pattern::Pattern;

/// The cardinalities of the seven Venn regions of an ordered triple of
/// hyperedges `(e_a, e_b, e_c)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionCardinalities {
    /// `|e_a \ e_b \ e_c|`
    pub a_only: usize,
    /// `|e_b \ e_c \ e_a|`
    pub b_only: usize,
    /// `|e_c \ e_a \ e_b|`
    pub c_only: usize,
    /// `|e_a ∩ e_b \ e_c|`
    pub ab: usize,
    /// `|e_b ∩ e_c \ e_a|`
    pub bc: usize,
    /// `|e_c ∩ e_a \ e_b|`
    pub ca: usize,
    /// `|e_a ∩ e_b ∩ e_c|`
    pub abc: usize,
}

impl RegionCardinalities {
    /// Computes the region cardinalities from the hyperedge sizes, the three
    /// pairwise intersection sizes, and the triple intersection size
    /// (Lemma 2):
    ///
    /// ```text
    /// |a\b\c| = |a| − |a∩b| − |c∩a| + |a∩b∩c|
    /// |a∩b\c| = |a∩b| − |a∩b∩c|
    /// ```
    ///
    /// Returns `None` if the inputs are inconsistent (any derived region
    /// would be negative), which signals a logic error upstream.
    pub fn from_intersections(
        size_a: usize,
        size_b: usize,
        size_c: usize,
        int_ab: usize,
        int_bc: usize,
        int_ca: usize,
        int_abc: usize,
    ) -> Option<Self> {
        let checked = |value: i64| -> Option<usize> {
            if value < 0 {
                None
            } else {
                Some(value as usize)
            }
        };
        let (sa, sb, sc) = (size_a as i64, size_b as i64, size_c as i64);
        let (iab, ibc, ica, iabc) = (int_ab as i64, int_bc as i64, int_ca as i64, int_abc as i64);
        Some(Self {
            a_only: checked(sa - iab - ica + iabc)?,
            b_only: checked(sb - iab - ibc + iabc)?,
            c_only: checked(sc - ica - ibc + iabc)?,
            ab: checked(iab - iabc)?,
            bc: checked(ibc - iabc)?,
            ca: checked(ica - iabc)?,
            abc: int_abc,
        })
    }

    /// Computes the region cardinalities directly from three sorted node
    /// lists. Primarily used by tests and the brute-force reference counter.
    pub fn from_sorted_sets(a: &[u32], b: &[u32], c: &[u32]) -> Self {
        let in_set = |set: &[u32], v: u32| set.binary_search(&v).is_ok();
        let mut counts = [0usize; 7];
        let mut all: Vec<u32> = a.iter().chain(b).chain(c).copied().collect();
        all.sort_unstable();
        all.dedup();
        for v in all {
            let ia = in_set(a, v);
            let ib = in_set(b, v);
            let ic = in_set(c, v);
            let index = match (ia, ib, ic) {
                (true, false, false) => 0,
                (false, true, false) => 1,
                (false, false, true) => 2,
                (true, true, false) => 3,
                (false, true, true) => 4,
                (true, false, true) => 5,
                (true, true, true) => 6,
                (false, false, false) => continue,
            };
            counts[index] += 1;
        }
        Self {
            a_only: counts[0],
            b_only: counts[1],
            c_only: counts[2],
            ab: counts[3],
            bc: counts[4],
            ca: counts[5],
            abc: counts[6],
        }
    }

    /// The emptiness [`Pattern`] of these cardinalities.
    pub fn pattern(&self) -> Pattern {
        Pattern::from_regions(
            self.a_only > 0,
            self.b_only > 0,
            self.c_only > 0,
            self.ab > 0,
            self.bc > 0,
            self.ca > 0,
            self.abc > 0,
        )
    }

    /// Size of hyperedge `e_a` implied by the regions.
    pub fn size_a(&self) -> usize {
        self.a_only + self.ab + self.ca + self.abc
    }

    /// Size of hyperedge `e_b` implied by the regions.
    pub fn size_b(&self) -> usize {
        self.b_only + self.ab + self.bc + self.abc
    }

    /// Size of hyperedge `e_c` implied by the regions.
    pub fn size_c(&self) -> usize {
        self.c_only + self.ca + self.bc + self.abc
    }

    /// Total number of distinct nodes covered by the three hyperedges.
    pub fn union_size(&self) -> usize {
        self.a_only + self.b_only + self.c_only + self.ab + self.bc + self.ca + self.abc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma2_formulas_match_direct_computation() {
        // a = {0,1,2,3}, b = {2,3,4}, c = {3,4,5,6}
        let a = [0u32, 1, 2, 3];
        let b = [2u32, 3, 4];
        let c = [3u32, 4, 5, 6];
        let direct = RegionCardinalities::from_sorted_sets(&a, &b, &c);
        let derived = RegionCardinalities::from_intersections(4, 3, 4, 2, 2, 1, 1).unwrap();
        assert_eq!(direct, derived);
        assert_eq!(direct.size_a(), 4);
        assert_eq!(direct.size_b(), 3);
        assert_eq!(direct.size_c(), 4);
        assert_eq!(direct.union_size(), 7);
    }

    #[test]
    fn inconsistent_inputs_rejected() {
        // Pairwise intersection larger than an edge.
        assert!(RegionCardinalities::from_intersections(2, 2, 2, 3, 0, 0, 0).is_none());
        // Triple intersection larger than a pairwise one.
        assert!(RegionCardinalities::from_intersections(5, 5, 5, 1, 1, 1, 2).is_none());
    }

    #[test]
    fn pattern_reflects_emptiness() {
        let regions = RegionCardinalities {
            a_only: 2,
            b_only: 0,
            c_only: 1,
            ab: 0,
            bc: 3,
            ca: 0,
            abc: 1,
        };
        let p = regions.pattern();
        assert!(p.region(crate::pattern::BIT_A_ONLY));
        assert!(!p.region(crate::pattern::BIT_B_ONLY));
        assert!(p.region(crate::pattern::BIT_C_ONLY));
        assert!(!p.region(crate::pattern::BIT_AB));
        assert!(p.region(crate::pattern::BIT_BC));
        assert!(!p.region(crate::pattern::BIT_CA));
        assert!(p.region(crate::pattern::BIT_ABC));
    }

    #[test]
    fn disjoint_sets() {
        let regions = RegionCardinalities::from_sorted_sets(&[0, 1], &[2, 3], &[4]);
        assert_eq!(regions.ab + regions.bc + regions.ca + regions.abc, 0);
        assert_eq!(regions.union_size(), 5);
    }

    #[test]
    fn identical_sets() {
        let regions = RegionCardinalities::from_sorted_sets(&[1, 2], &[1, 2], &[1, 2]);
        assert_eq!(regions.abc, 2);
        assert_eq!(regions.union_size(), 2);
        assert!(regions.pattern().has_duplicate_edges());
    }
}
