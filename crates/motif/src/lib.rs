//! Hypergraph motifs (h-motifs).
//!
//! An h-motif describes the connectivity pattern of three connected
//! hyperedges `{e_i, e_j, e_k}` by the emptiness of the seven Venn regions
//! (Section 2.2 of the paper):
//!
//! 1. `e_i \ e_j \ e_k`
//! 2. `e_j \ e_k \ e_i`
//! 3. `e_k \ e_i \ e_j`
//! 4. `e_i ∩ e_j \ e_k`
//! 5. `e_j ∩ e_k \ e_i`
//! 6. `e_k ∩ e_i \ e_j`
//! 7. `e_i ∩ e_j ∩ e_k`
//!
//! Out of the 2⁷ = 128 emptiness patterns, exactly **26** remain after
//! removing patterns that are symmetric to each other, contain duplicate
//! hyperedges, or cannot arise from three *connected* hyperedges. This crate
//! provides:
//!
//! - [`Pattern`]: the 7-bit emptiness pattern and its permutation group
//!   action, canonicalization and validity predicates.
//! - [`RegionCardinalities`]: exact region sizes computed from hyperedge sizes
//!   and pairwise/triple intersections (Lemma 2 of the paper).
//! - [`MotifCatalog`] and [`HMotif`]: the canonical numbering 1..=26 used by
//!   this reproduction, with open/closed classification and metadata.
//! - [`generalized`]: enumeration of h-motifs over `k ≥ 3` hyperedges
//!   (26 for k = 3, 1 853 for k = 4), following Section 2.2's generalization.
//!
//! ### Numbering
//!
//! The paper fixes its numbering pictorially (Figure 3); the figure cannot be
//! recovered from text alone, so this crate uses a deterministic rule with the
//! same group structure (see DESIGN.md §3.1): motifs 1–16 are closed with a
//! non-empty triple intersection, motifs 17–22 are the open motifs (17 and 18
//! being the "a hyperedge and its two disjoint subsets" patterns), and motifs
//! 23–26 are the closed motifs whose triple intersection is empty.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cardinalities;
pub mod catalog;
pub mod generalized;
pub mod pattern;

pub use cardinalities::RegionCardinalities;
pub use catalog::{HMotif, MotifCatalog, MotifClass, MotifId, NUM_MOTIFS};
pub use generalized::{count_generalized_motifs, GeneralPattern, GeneralizedCatalog};
pub use pattern::Pattern;
