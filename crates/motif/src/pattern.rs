//! The 7-bit emptiness pattern of three hyperedges and its symmetry group.

use serde::{Deserialize, Serialize};

/// Bit assigned to the region `e_a \ e_b \ e_c` (nodes only in the first
/// hyperedge).
pub const BIT_A_ONLY: u8 = 0;
/// Bit assigned to the region `e_b \ e_a \ e_c`.
pub const BIT_B_ONLY: u8 = 1;
/// Bit assigned to the region `e_c \ e_a \ e_b`.
pub const BIT_C_ONLY: u8 = 2;
/// Bit assigned to the region `e_a ∩ e_b \ e_c`.
pub const BIT_AB: u8 = 3;
/// Bit assigned to the region `e_b ∩ e_c \ e_a`.
pub const BIT_BC: u8 = 4;
/// Bit assigned to the region `e_c ∩ e_a \ e_b`.
pub const BIT_CA: u8 = 5;
/// Bit assigned to the region `e_a ∩ e_b ∩ e_c`.
pub const BIT_ABC: u8 = 6;

/// The six permutations of three hyperedges. Entry `p` means "the new
/// hyperedge in position `x` is the old hyperedge `p[x]`".
pub const PERMUTATIONS: [[usize; 3]; 6] = [
    [0, 1, 2],
    [0, 2, 1],
    [1, 0, 2],
    [1, 2, 0],
    [2, 0, 1],
    [2, 1, 0],
];

/// A 7-bit pattern recording which of the seven Venn regions of three
/// hyperedges are **non-empty** (bit set ⇔ region non-empty).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Pattern(u8);

impl Pattern {
    /// Total number of distinct raw patterns (2⁷).
    pub const NUM_RAW: usize = 128;

    /// Creates a pattern from its raw 7-bit encoding.
    ///
    /// # Panics
    /// Panics if bits above the seventh are set.
    pub fn from_bits(bits: u8) -> Self {
        assert!(bits < 128, "pattern uses only 7 bits, got {bits:#010b}");
        Pattern(bits)
    }

    /// Creates a pattern from the emptiness of the seven regions, in the
    /// order used throughout the paper:
    /// `(a_only, b_only, c_only, ab, bc, ca, abc)`.
    #[allow(clippy::too_many_arguments)]
    pub fn from_regions(
        a_only: bool,
        b_only: bool,
        c_only: bool,
        ab: bool,
        bc: bool,
        ca: bool,
        abc: bool,
    ) -> Self {
        let mut bits = 0u8;
        if a_only {
            bits |= 1 << BIT_A_ONLY;
        }
        if b_only {
            bits |= 1 << BIT_B_ONLY;
        }
        if c_only {
            bits |= 1 << BIT_C_ONLY;
        }
        if ab {
            bits |= 1 << BIT_AB;
        }
        if bc {
            bits |= 1 << BIT_BC;
        }
        if ca {
            bits |= 1 << BIT_CA;
        }
        if abc {
            bits |= 1 << BIT_ABC;
        }
        Pattern(bits)
    }

    /// The raw 7-bit encoding.
    #[inline]
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Whether the region with bit index `bit` is non-empty.
    #[inline]
    pub fn region(self, bit: u8) -> bool {
        (self.0 >> bit) & 1 == 1
    }

    /// Number of non-empty regions.
    #[inline]
    pub fn num_nonempty_regions(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether hyperedge in position `x ∈ {0,1,2}` is non-empty under this
    /// pattern.
    pub fn edge_nonempty(self, x: usize) -> bool {
        let bits = match x {
            0 => [BIT_A_ONLY, BIT_AB, BIT_CA, BIT_ABC],
            1 => [BIT_B_ONLY, BIT_AB, BIT_BC, BIT_ABC],
            2 => [BIT_C_ONLY, BIT_BC, BIT_CA, BIT_ABC],
            _ => panic!("edge position must be 0, 1 or 2"),
        };
        bits.iter().any(|&b| self.region(b))
    }

    /// Whether hyperedges in positions `x` and `y` intersect under this
    /// pattern.
    pub fn pair_intersects(self, x: usize, y: usize) -> bool {
        self.region(pair_bit(x, y)) || self.region(BIT_ABC)
    }

    /// Whether hyperedges in positions `x` and `y` are forced to be equal
    /// (identical node sets) by this pattern.
    pub fn pair_equal(self, x: usize, y: usize) -> bool {
        let z = 3 - x - y;
        // x \ y = (x only) ∪ (x ∩ z \ y); y \ x analogously.
        let x_minus_y = self.region(only_bit(x)) || self.region(pair_bit(x, z));
        let y_minus_x = self.region(only_bit(y)) || self.region(pair_bit(y, z));
        !x_minus_y && !y_minus_x
    }

    /// Number of pairs of hyperedges that intersect (0–3).
    pub fn num_adjacent_pairs(self) -> usize {
        [(0, 1), (1, 2), (2, 0)]
            .iter()
            .filter(|&&(x, y)| self.pair_intersects(x, y))
            .count()
    }

    /// Whether this pattern describes three **connected** hyperedges: at
    /// least two of the three pairs intersect.
    pub fn is_connected(self) -> bool {
        self.num_adjacent_pairs() >= 2
    }

    /// Whether all three pairs intersect (the pattern is *closed*).
    pub fn is_closed(self) -> bool {
        self.num_adjacent_pairs() == 3
    }

    /// Whether the pattern is *open*: connected, but one pair is disjoint.
    pub fn is_open(self) -> bool {
        self.num_adjacent_pairs() == 2
    }

    /// Whether any two of the three hyperedges would necessarily be identical
    /// sets (the "duplicated hyperedges" exclusion of Figure 4).
    pub fn has_duplicate_edges(self) -> bool {
        self.pair_equal(0, 1) || self.pair_equal(1, 2) || self.pair_equal(0, 2)
    }

    /// Whether the pattern is a valid h-motif representative: every hyperedge
    /// non-empty, the triple connected, and no duplicated hyperedges.
    pub fn is_valid(self) -> bool {
        (0..3).all(|x| self.edge_nonempty(x)) && self.is_connected() && !self.has_duplicate_edges()
    }

    /// Applies a permutation of the three hyperedges: the result is the
    /// pattern seen when the hyperedge in new position `x` is the old
    /// hyperedge `permutation[x]`.
    pub fn permute(self, permutation: [usize; 3]) -> Self {
        let mut bits = 0u8;
        for (x, &source) in permutation.iter().enumerate() {
            if self.region(only_bit(source)) {
                bits |= 1 << only_bit(x);
            }
        }
        for &(x, y) in &[(0usize, 1usize), (1, 2), (2, 0)] {
            if self.region(pair_bit(permutation[x], permutation[y])) {
                bits |= 1 << pair_bit(x, y);
            }
        }
        if self.region(BIT_ABC) {
            bits |= 1 << BIT_ABC;
        }
        Pattern(bits)
    }

    /// The canonical representative of this pattern's orbit under the six
    /// permutations: the minimum raw encoding.
    pub fn canonical(self) -> Self {
        PERMUTATIONS
            .iter()
            .map(|&p| self.permute(p))
            .min()
            .expect("non-empty permutation set")
    }

    /// Iterator over all 128 raw patterns.
    pub fn all_raw() -> impl Iterator<Item = Pattern> {
        (0u8..128).map(Pattern)
    }

    /// A compact human-readable rendering listing the non-empty regions, e.g.
    /// `"{a, ab, abc}"`.
    pub fn describe(self) -> String {
        const NAMES: [&str; 7] = ["a", "b", "c", "ab", "bc", "ca", "abc"];
        let mut parts = Vec::new();
        for (bit, name) in NAMES.iter().enumerate() {
            if self.region(bit as u8) {
                parts.push(*name);
            }
        }
        format!("{{{}}}", parts.join(", "))
    }
}

/// Bit index of the "private" region of the hyperedge in position `x`.
#[inline]
pub fn only_bit(x: usize) -> u8 {
    match x {
        0 => BIT_A_ONLY,
        1 => BIT_B_ONLY,
        2 => BIT_C_ONLY,
        _ => panic!("edge position must be 0, 1 or 2"),
    }
}

/// Bit index of the pairwise-only region of positions `x` and `y` (unordered).
#[inline]
pub fn pair_bit(x: usize, y: usize) -> u8 {
    match (x.min(y), x.max(y)) {
        (0, 1) => BIT_AB,
        (1, 2) => BIT_BC,
        (0, 2) => BIT_CA,
        _ => panic!("invalid pair ({x}, {y})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_regions_matches_bits() {
        let p = Pattern::from_regions(true, false, false, true, false, true, true);
        assert_eq!(
            p.bits(),
            (1 << BIT_A_ONLY) | (1 << BIT_AB) | (1 << BIT_CA) | (1 << BIT_ABC)
        );
        assert!(p.region(BIT_A_ONLY));
        assert!(!p.region(BIT_B_ONLY));
        assert_eq!(p.num_nonempty_regions(), 4);
    }

    #[test]
    #[should_panic(expected = "7 bits")]
    fn from_bits_rejects_overflow() {
        let _ = Pattern::from_bits(200);
    }

    #[test]
    fn edge_nonempty_logic() {
        // Only the abc region is filled: every edge is non-empty.
        let p = Pattern::from_regions(false, false, false, false, false, false, true);
        assert!(p.edge_nonempty(0) && p.edge_nonempty(1) && p.edge_nonempty(2));
        // Only a's private region: edges b and c are empty.
        let p = Pattern::from_regions(true, false, false, false, false, false, false);
        assert!(p.edge_nonempty(0));
        assert!(!p.edge_nonempty(1));
        assert!(!p.edge_nonempty(2));
    }

    #[test]
    fn connectivity_and_closure() {
        // All pairwise-only regions filled: closed.
        let closed = Pattern::from_regions(false, false, false, true, true, true, false);
        assert!(closed.is_closed());
        assert!(closed.is_connected());
        assert!(!closed.is_open());
        // Only ab and ca intersect: open.
        let open = Pattern::from_regions(true, true, true, true, false, true, false);
        assert!(open.is_open());
        assert!(open.is_connected());
        // Only ab: b-c and c-a disjoint, c would be empty anyway: disconnected.
        let disconnected = Pattern::from_regions(true, true, true, true, false, false, false);
        assert!(!disconnected.is_connected());
    }

    #[test]
    fn duplicate_detection() {
        // a and b both consist exactly of the shared ab ∪ abc content.
        let p = Pattern::from_regions(false, false, true, true, false, false, true);
        assert!(p.pair_equal(0, 1));
        assert!(p.has_duplicate_edges());
        assert!(!p.is_valid());
        // Adding a private node to a breaks the equality.
        let p = Pattern::from_regions(true, false, true, true, false, false, true);
        assert!(!p.pair_equal(0, 1));
    }

    #[test]
    fn permutation_identity_and_involution() {
        for p in Pattern::all_raw() {
            assert_eq!(p.permute([0, 1, 2]), p);
            // Swapping twice is the identity.
            assert_eq!(p.permute([1, 0, 2]).permute([1, 0, 2]), p);
            assert_eq!(p.permute([0, 2, 1]).permute([0, 2, 1]), p);
        }
    }

    #[test]
    fn permutation_is_group_action() {
        // (p ∘ q) applied = q applied then p applied.
        let compose = |p: [usize; 3], q: [usize; 3]| [p[q[0]], p[q[1]], p[q[2]]];
        for pattern in Pattern::all_raw() {
            for &p in &PERMUTATIONS {
                for &q in &PERMUTATIONS {
                    assert_eq!(
                        pattern.permute(compose(p, q)),
                        pattern.permute(p).permute(q)
                    );
                }
            }
        }
    }

    #[test]
    fn canonical_is_invariant_and_minimal() {
        for pattern in Pattern::all_raw() {
            let canonical = pattern.canonical();
            for &p in &PERMUTATIONS {
                assert_eq!(pattern.permute(p).canonical(), canonical);
                assert!(canonical.bits() <= pattern.permute(p).bits());
            }
        }
    }

    #[test]
    fn validity_is_permutation_invariant() {
        for pattern in Pattern::all_raw() {
            for &p in &PERMUTATIONS {
                assert_eq!(pattern.is_valid(), pattern.permute(p).is_valid());
                assert_eq!(pattern.is_closed(), pattern.permute(p).is_closed());
                assert_eq!(pattern.is_open(), pattern.permute(p).is_open());
            }
        }
    }

    #[test]
    fn exactly_26_valid_equivalence_classes() {
        let mut canonicals: Vec<u8> = Pattern::all_raw()
            .filter(|p| p.is_valid())
            .map(|p| p.canonical().bits())
            .collect();
        canonicals.sort_unstable();
        canonicals.dedup();
        assert_eq!(canonicals.len(), 26);
    }

    #[test]
    fn open_and_closed_class_counts() {
        let mut open = std::collections::BTreeSet::new();
        let mut closed_with_core = std::collections::BTreeSet::new();
        let mut closed_without_core = std::collections::BTreeSet::new();
        for p in Pattern::all_raw().filter(|p| p.is_valid()) {
            let c = p.canonical().bits();
            if p.is_open() {
                open.insert(c);
            } else if p.region(BIT_ABC) {
                closed_with_core.insert(c);
            } else {
                closed_without_core.insert(c);
            }
        }
        assert_eq!(open.len(), 6);
        assert_eq!(closed_with_core.len(), 16);
        assert_eq!(closed_without_core.len(), 4);
    }

    #[test]
    fn describe_lists_regions() {
        let p = Pattern::from_regions(true, false, false, false, false, false, true);
        assert_eq!(p.describe(), "{a, abc}");
    }

    #[test]
    fn pair_bit_is_symmetric() {
        assert_eq!(pair_bit(0, 1), pair_bit(1, 0));
        assert_eq!(pair_bit(1, 2), pair_bit(2, 1));
        assert_eq!(pair_bit(0, 2), pair_bit(2, 0));
    }
}
