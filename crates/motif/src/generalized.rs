//! Generalization of h-motifs to `k ≥ 3` hyperedges (Section 2.2 of the
//! paper).
//!
//! For `k` hyperedges there are `2^k − 1` Venn regions; a generalized h-motif
//! is an equivalence class (under permutations of the hyperedges) of
//! emptiness patterns of those regions such that every hyperedge is
//! non-empty, the hyperedges are connected, and no two hyperedges are forced
//! to be identical. The paper reports 26 such motifs for `k = 3` and 1 853
//! for `k = 4`; this module recomputes those numbers by explicit enumeration,
//! which doubles as a strong consistency check of the `k = 3` catalog.

/// A generalized pattern over `k` hyperedges: bit `r` (for `r` in
/// `1..2^k`) is set iff the Venn region of the hyperedge subset with
/// characteristic mask `r` is non-empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GeneralPattern {
    bits: u64,
    k: u32,
}

impl GeneralPattern {
    /// Creates a pattern for `k` hyperedges from its raw bitset. Bit `r`
    /// corresponds to the region of subset-mask `r`; bit 0 is unused.
    pub fn new(k: u32, bits: u64) -> Self {
        assert!((2..=5).contains(&k), "supported k is 2..=5");
        let mask = (1u64 << (1u64 << k)) - 2; // bits 1 .. 2^k-1
        Self {
            bits: bits & mask,
            k,
        }
    }

    /// Raw bitset.
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Whether the region of subset-mask `region` is non-empty.
    #[inline]
    pub fn region_nonempty(&self, region: u32) -> bool {
        (self.bits >> region) & 1 == 1
    }

    /// Whether hyperedge `i` is non-empty (some region containing `i` is
    /// non-empty).
    pub fn edge_nonempty(&self, i: u32) -> bool {
        let total = 1u32 << self.k;
        (1..total).any(|r| r & (1 << i) != 0 && self.region_nonempty(r))
    }

    /// Whether hyperedges `i` and `j` intersect.
    pub fn pair_intersects(&self, i: u32, j: u32) -> bool {
        let total = 1u32 << self.k;
        let need = (1u32 << i) | (1 << j);
        (1..total).any(|r| r & need == need && self.region_nonempty(r))
    }

    /// Whether hyperedges `i` and `j` are forced to be identical node sets.
    pub fn pair_equal(&self, i: u32, j: u32) -> bool {
        let total = 1u32 << self.k;
        for r in 1..total {
            if !self.region_nonempty(r) {
                continue;
            }
            let has_i = r & (1 << i) != 0;
            let has_j = r & (1 << j) != 0;
            if has_i != has_j {
                return false;
            }
        }
        true
    }

    /// Whether the hyperedges form a connected adjacency graph.
    pub fn is_connected(&self) -> bool {
        let k = self.k as usize;
        let mut visited = vec![false; k];
        let mut stack = vec![0usize];
        visited[0] = true;
        let mut seen = 1usize;
        while let Some(u) = stack.pop() {
            for (v, vis) in visited.iter_mut().enumerate().take(k) {
                if !*vis && self.pair_intersects(u as u32, v as u32) {
                    *vis = true;
                    seen += 1;
                    stack.push(v);
                }
            }
        }
        seen == k
    }

    /// Validity as a generalized h-motif representative.
    pub fn is_valid(&self) -> bool {
        let k = self.k;
        (0..k).all(|i| self.edge_nonempty(i))
            && self.is_connected()
            && !(0..k).any(|i| ((i + 1)..k).any(|j| self.pair_equal(i, j)))
    }

    /// Applies a permutation of hyperedges: the new hyperedge `x` is the old
    /// hyperedge `perm[x]`.
    pub fn permute(&self, perm: &[usize]) -> Self {
        debug_assert_eq!(perm.len(), self.k as usize);
        let total = 1u32 << self.k;
        let mut bits = 0u64;
        for new_region in 1..total {
            // The old region corresponding to this new one: replace each new
            // index x by perm[x].
            let mut old_region = 0u32;
            for x in 0..self.k {
                if new_region & (1 << x) != 0 {
                    old_region |= 1 << perm[x as usize];
                }
            }
            if self.region_nonempty(old_region) {
                bits |= 1 << new_region;
            }
        }
        Self { bits, k: self.k }
    }

    /// Canonical representative: minimum bitset over all permutations.
    pub fn canonical(&self) -> Self {
        let mut best = *self;
        let mut indices: Vec<usize> = (0..self.k as usize).collect();
        permute_all(&mut indices, 0, &mut |perm| {
            let candidate = self.permute(perm);
            if candidate.bits < best.bits {
                best = candidate;
            }
        });
        best
    }
}

fn permute_all<F: FnMut(&[usize])>(items: &mut [usize], start: usize, visit: &mut F) {
    if start == items.len() {
        visit(items);
        return;
    }
    for i in start..items.len() {
        items.swap(start, i);
        permute_all(items, start + 1, visit);
        items.swap(start, i);
    }
}

/// Counts the generalized h-motifs over `k` hyperedges by explicit
/// enumeration of all `2^(2^k − 1)` emptiness patterns.
///
/// Supported values are `k ∈ {2, 3, 4}` (for `k = 5` the raw pattern space
/// has 2³¹ elements, which the paper also does not enumerate directly).
///
/// Expected results: 2 motifs for `k = 2` (overlap with/without containment
/// is not distinguished; the two patterns are "proper overlap" and
/// "containment"), 26 for `k = 3`, 1 853 for `k = 4`.
pub fn count_generalized_motifs(k: u32) -> usize {
    GeneralizedCatalog::new(k).len()
}

/// The catalog of generalized h-motifs over `k` hyperedges: every valid
/// canonical emptiness pattern, assigned a dense identifier `0..len()` in
/// increasing order of its canonical bitset.
///
/// For `k = 3` this contains 26 motifs (the classic catalog), for `k = 4`
/// it contains 1 853, matching Section 2.2 of the paper. Construction
/// enumerates all `2^(2^k − 1)` raw patterns, so it is supported for
/// `k ∈ {2, 3, 4}` only (the same limit the paper's appendix works within
/// when it reports exact motif counts).
#[derive(Debug, Clone)]
pub struct GeneralizedCatalog {
    k: u32,
    /// Canonical bitsets in increasing order; the index is the motif id.
    canonical_bits: Vec<u64>,
    /// Map canonical bitset -> dense id.
    index: std::collections::HashMap<u64, usize>,
}

impl GeneralizedCatalog {
    /// Enumerates the catalog for `k` hyperedges (`2 ≤ k ≤ 4`).
    pub fn new(k: u32) -> Self {
        assert!(
            (2..=4).contains(&k),
            "enumeration supported for k = 2, 3, 4"
        );
        let num_regions = (1u64 << k) - 1;
        let num_patterns = 1u64 << num_regions;
        let mut canonicals = std::collections::BTreeSet::new();
        for raw in 0..num_patterns {
            let pattern = GeneralPattern::new(k, raw << 1);
            if pattern.is_valid() {
                canonicals.insert(pattern.canonical().bits());
            }
        }
        let canonical_bits: Vec<u64> = canonicals.into_iter().collect();
        let index = canonical_bits
            .iter()
            .enumerate()
            .map(|(i, &bits)| (bits, i))
            .collect();
        Self {
            k,
            canonical_bits,
            index,
        }
    }

    /// Number of hyperedges per motif.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of motifs in the catalog.
    pub fn len(&self) -> usize {
        self.canonical_bits.len()
    }

    /// Whether the catalog is empty (never true for supported `k`).
    pub fn is_empty(&self) -> bool {
        self.canonical_bits.is_empty()
    }

    /// The dense identifier of a (not necessarily canonical) valid pattern,
    /// or `None` for invalid patterns or patterns of the wrong arity.
    pub fn id_of(&self, pattern: GeneralPattern) -> Option<usize> {
        if pattern.k != self.k || !pattern.is_valid() {
            return None;
        }
        self.index.get(&pattern.canonical().bits()).copied()
    }

    /// The canonical pattern of motif `id`.
    ///
    /// # Panics
    /// Panics if `id ≥ len()`.
    pub fn pattern(&self, id: usize) -> GeneralPattern {
        GeneralPattern::new(self.k, self.canonical_bits[id])
    }

    /// Iterates over `(id, canonical pattern)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, GeneralPattern)> + '_ {
        self.canonical_bits
            .iter()
            .enumerate()
            .map(move |(i, &bits)| (i, GeneralPattern::new(self.k, bits)))
    }

    /// Whether motif `id` is *open*: at least one pair of its hyperedges is
    /// disjoint. (For `k = 3` this matches the paper's open/closed split.)
    pub fn is_open(&self, id: usize) -> bool {
        let pattern = self.pattern(id);
        let k = self.k;
        (0..k).any(|i| ((i + 1)..k).any(|j| !pattern.pair_intersects(i, j)))
    }

    /// The number of adjacent (overlapping) hyperedge pairs in motif `id`,
    /// i.e. the number of hyperwedges each of its instances contains.
    pub fn num_hyperwedges(&self, id: usize) -> usize {
        let pattern = self.pattern(id);
        let k = self.k;
        (0..k)
            .flat_map(|i| ((i + 1)..k).map(move |j| (i, j)))
            .filter(|&(i, j)| pattern.pair_intersects(i, j))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k3_matches_the_dedicated_catalog() {
        assert_eq!(count_generalized_motifs(3), 26);
    }

    #[test]
    fn k4_matches_the_paper() {
        assert_eq!(count_generalized_motifs(4), 1853);
    }

    #[test]
    fn k2_has_two_motifs() {
        // Two adjacent, distinct hyperedges can only relate in two ways:
        // strict containment (one edge has no private nodes) or proper
        // overlap (both have private nodes).
        assert_eq!(count_generalized_motifs(2), 2);
    }

    #[test]
    fn general_pattern_connectivity() {
        // k = 3, only region {0,1} non-empty → edge 2 empty and disconnected.
        let p = GeneralPattern::new(3, 1 << 0b011);
        assert!(p.pair_intersects(0, 1));
        assert!(!p.pair_intersects(1, 2));
        assert!(!p.edge_nonempty(2));
        assert!(!p.is_valid());
    }

    #[test]
    fn general_pattern_duplicates() {
        // Only region {0,1,2} non-empty: all three edges identical.
        let p = GeneralPattern::new(3, 1 << 0b111);
        assert!(p.pair_equal(0, 1));
        assert!(!p.is_valid());
    }

    #[test]
    fn permutation_preserves_validity() {
        for raw in 0..(1u64 << 7) {
            let p = GeneralPattern::new(3, raw << 1);
            let perm = [2usize, 0, 1];
            assert_eq!(p.is_valid(), p.permute(&perm).is_valid());
        }
    }

    #[test]
    fn canonical_is_idempotent() {
        for raw in (0..(1u64 << 7)).step_by(3) {
            let p = GeneralPattern::new(3, raw << 1);
            assert_eq!(p.canonical().canonical(), p.canonical());
        }
    }

    #[test]
    fn catalog_k3_has_26_motifs_with_6_open() {
        let catalog = GeneralizedCatalog::new(3);
        assert_eq!(catalog.len(), 26);
        assert!(!catalog.is_empty());
        assert_eq!(catalog.k(), 3);
        let open = (0..catalog.len()).filter(|&id| catalog.is_open(id)).count();
        assert_eq!(open, 6, "the paper's h-motifs 17-22 are the open ones");
        // Open motifs have exactly 2 hyperwedges, closed ones 3.
        for id in 0..catalog.len() {
            let wedges = catalog.num_hyperwedges(id);
            if catalog.is_open(id) {
                assert_eq!(wedges, 2);
            } else {
                assert_eq!(wedges, 3);
            }
        }
    }

    #[test]
    fn catalog_k4_has_1853_motifs() {
        let catalog = GeneralizedCatalog::new(4);
        assert_eq!(catalog.len(), 1853);
        // Every catalog pattern is valid, canonical, and maps back to itself.
        for (id, pattern) in catalog.iter() {
            assert!(pattern.is_valid());
            assert_eq!(pattern.canonical(), pattern);
            assert_eq!(catalog.id_of(pattern), Some(id));
            assert!(catalog.num_hyperwedges(id) >= 3);
        }
    }

    #[test]
    fn catalog_id_of_rejects_invalid_and_mismatched_patterns() {
        let catalog = GeneralizedCatalog::new(3);
        // Disconnected pattern.
        assert_eq!(catalog.id_of(GeneralPattern::new(3, 1 << 0b011)), None);
        // Wrong arity.
        let k4_catalog = GeneralizedCatalog::new(4);
        let some_k4 = k4_catalog.pattern(0);
        assert_eq!(catalog.id_of(some_k4), None);
    }

    #[test]
    fn catalog_ids_follow_non_canonical_representatives() {
        let catalog = GeneralizedCatalog::new(3);
        // A valid but possibly non-canonical pattern must resolve to the same
        // id as its canonical form.
        for raw in 0..(1u64 << 7) {
            let pattern = GeneralPattern::new(3, raw << 1);
            if pattern.is_valid() {
                assert_eq!(catalog.id_of(pattern), catalog.id_of(pattern.canonical()));
            }
        }
    }

    #[test]
    fn k3_canonical_classes_agree_with_pattern_module() {
        use crate::pattern::Pattern;
        // The generalized machinery and the specialized 3-edge machinery must
        // agree on the number of valid equivalence classes.
        let mut from_pattern = std::collections::HashSet::new();
        for p in Pattern::all_raw().filter(|p| p.is_valid()) {
            from_pattern.insert(p.canonical().bits());
        }
        assert_eq!(from_pattern.len(), count_generalized_motifs(3));
    }
}
