//! One synthetic hypergraph generator per domain of the paper.

use mochy_hypergraph::{Hypergraph, HypergraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::util::{sample_size, ZipfSampler};

/// The five domains of Table 2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DomainKind {
    /// Authors collaborating on publications (coauth-DBLP/geology/history).
    Coauthorship,
    /// Face-to-face group interactions (contact-primary/high).
    Contact,
    /// Sender plus receivers of an e-mail (email-Enron/EU).
    Email,
    /// Tags attached to the same post (tags-ubuntu/math).
    Tags,
    /// Users participating in the same thread (threads-ubuntu/math).
    Threads,
}

impl DomainKind {
    /// All five domains, in the order the paper lists them.
    pub const ALL: [DomainKind; 5] = [
        DomainKind::Coauthorship,
        DomainKind::Contact,
        DomainKind::Email,
        DomainKind::Tags,
        DomainKind::Threads,
    ];

    /// Short lowercase name (e.g. `"coauth"`), used in dataset labels.
    pub fn short_name(&self) -> &'static str {
        match self {
            DomainKind::Coauthorship => "coauth",
            DomainKind::Contact => "contact",
            DomainKind::Email => "email",
            DomainKind::Tags => "tags",
            DomainKind::Threads => "threads",
        }
    }
}

/// Configuration of a synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Domain flavour.
    pub kind: DomainKind,
    /// Number of node identifiers (authors, people, accounts, tags, users).
    pub num_nodes: usize,
    /// Number of hyperedges to generate.
    pub num_edges: usize,
    /// RNG seed; the output is a deterministic function of the whole config.
    pub seed: u64,
}

impl GeneratorConfig {
    /// Creates a configuration.
    pub fn new(kind: DomainKind, num_nodes: usize, num_edges: usize, seed: u64) -> Self {
        Self {
            kind,
            num_nodes,
            num_edges,
            seed,
        }
    }
}

/// Generates a synthetic hypergraph with the flavour of the configured
/// domain. Output is deterministic in the configuration.
pub fn generate(config: &GeneratorConfig) -> Hypergraph {
    assert!(config.num_nodes >= 4, "need at least 4 nodes");
    assert!(config.num_edges >= 1, "need at least 1 hyperedge");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let edges = match config.kind {
        DomainKind::Coauthorship => coauthorship(config.num_nodes, config.num_edges, &mut rng),
        DomainKind::Contact => contact(config.num_nodes, config.num_edges, &mut rng),
        DomainKind::Email => email(config.num_nodes, config.num_edges, &mut rng),
        DomainKind::Tags => tags(config.num_nodes, config.num_edges, &mut rng),
        DomainKind::Threads => threads(config.num_nodes, config.num_edges, &mut rng),
    };
    let mut builder = HypergraphBuilder::with_capacity(edges.len());
    builder.extend_edges(edges);
    builder
        .build()
        .expect("generators always produce hyperedges")
}

/// Co-authorship: authors live in research communities; teams are small,
/// productivity is skewed, and follow-up papers reuse a core of a previous
/// team, which produces the "shared core plus private authors" closed motifs
/// the paper finds over-represented in this domain.
fn coauthorship(num_nodes: usize, num_edges: usize, rng: &mut StdRng) -> Vec<Vec<NodeId>> {
    let community_size = 24usize.min(num_nodes).max(4);
    let num_communities = num_nodes.div_ceil(community_size);
    let community_sampler = ZipfSampler::new(num_communities, 0.8);
    let productivity = ZipfSampler::new(community_size, 1.1);

    let mut edges: Vec<Vec<NodeId>> = Vec::with_capacity(num_edges);
    let mut per_community_papers: Vec<Vec<usize>> = vec![Vec::new(); num_communities];

    for paper in 0..num_edges {
        let community = community_sampler.sample(rng);
        let base = community * community_size;
        let span = community_size.min(num_nodes - base);
        let team_size = sample_size(2, 8.min(span.max(2)), 0.45, rng);

        let mut members: Vec<NodeId>;
        let previous = &per_community_papers[community];
        if !previous.is_empty() && rng.gen_bool(0.35) {
            // Follow-up paper: keep a core of an earlier team, add new people.
            let earlier = &edges[previous[rng.gen_range(0..previous.len())]];
            let core_size = (earlier.len() / 2).max(1).min(team_size);
            let mut earlier_shuffled = earlier.clone();
            earlier_shuffled.shuffle(rng);
            members = earlier_shuffled.into_iter().take(core_size).collect();
            let mut attempts = 0usize;
            while members.len() < team_size && attempts < 40 * team_size {
                let local = productivity.sample(rng).min(span - 1);
                let candidate = (base + local) as NodeId;
                if !members.contains(&candidate) {
                    members.push(candidate);
                }
                attempts += 1;
            }
        } else {
            members = productivity
                .sample_distinct(team_size, rng)
                .into_iter()
                .map(|local| (base + local.min(span - 1)) as NodeId)
                .collect();
            members.sort_unstable();
            members.dedup();
        }
        // Occasional cross-community collaborator.
        if rng.gen_bool(0.08) {
            let outsider = rng.gen_range(0..num_nodes) as NodeId;
            if !members.contains(&outsider) {
                members.push(outsider);
            }
        }
        per_community_papers[community].push(paper);
        edges.push(members);
    }
    edges
}

/// Contact: a small population split into classes; interactions are tiny
/// (2–5 people), heavily repeated with small perturbations, so hyperedges
/// pile up on the same few intersections (motifs concentrated in overlaps).
fn contact(num_nodes: usize, num_edges: usize, rng: &mut StdRng) -> Vec<Vec<NodeId>> {
    let class_size = 20usize.min(num_nodes).max(4);
    let num_classes = num_nodes.div_ceil(class_size);
    let class_sampler = ZipfSampler::new(num_classes, 0.3);
    let sociability = ZipfSampler::new(class_size, 0.7);

    let mut edges: Vec<Vec<NodeId>> = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        if !edges.is_empty() && rng.gen_bool(0.5) {
            // Repeat a recent interaction with one member swapped.
            let template =
                edges[rng.gen_range(edges.len().saturating_sub(200)..edges.len())].clone();
            let mut members = template;
            if !members.is_empty() {
                let replace = rng.gen_range(0..members.len());
                let base = (members[replace] as usize / class_size) * class_size;
                let span = class_size.min(num_nodes - base);
                let candidate = (base + rng.gen_range(0..span)) as NodeId;
                if !members.contains(&candidate) {
                    members[replace] = candidate;
                }
            }
            edges.push(members);
            continue;
        }
        let class = class_sampler.sample(rng);
        let base = class * class_size;
        let span = class_size.min(num_nodes - base);
        let size = sample_size(2, 5.min(span.max(2)), 0.5, rng);
        let members: Vec<NodeId> = sociability
            .sample_distinct(size, rng)
            .into_iter()
            .map(|local| (base + local.min(span - 1)) as NodeId)
            .collect();
        edges.push(members);
    }
    edges
}

/// E-mail: a hyperedge is a sender plus the receivers. Senders are heavily
/// skewed, receiver lists are drawn from per-sender contact lists and often
/// nest inside earlier, larger receiver lists of the same sender, creating
/// the "one hyperedge contains most nodes" motifs of Section 4.2.
fn email(num_nodes: usize, num_edges: usize, rng: &mut StdRng) -> Vec<Vec<NodeId>> {
    let sender_sampler = ZipfSampler::new(num_nodes, 1.2);
    // Per-sender contact list: a contiguous pseudo-random block of accounts.
    let contact_list = |sender: usize, rng: &mut StdRng| -> Vec<NodeId> {
        let list_size = 8 + (sender % 32);
        let mut list = Vec::with_capacity(list_size);
        let mut state = sender as u64;
        for _ in 0..list_size {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            list.push((state % num_nodes as u64) as NodeId);
        }
        list.shuffle(rng);
        list.sort_unstable();
        list.dedup();
        list
    };

    let mut per_sender_emails: Vec<Vec<usize>> = vec![Vec::new(); num_nodes];
    let mut edges: Vec<Vec<NodeId>> = Vec::with_capacity(num_edges);
    for index in 0..num_edges {
        let sender = sender_sampler.sample(rng);
        let list = contact_list(sender, rng);
        let previous = &per_sender_emails[sender];
        let mut receivers: Vec<NodeId> = if !previous.is_empty() && rng.gen_bool(0.45) {
            // Reply/follow-up: a subset of an earlier receiver list.
            let earlier = &edges[previous[rng.gen_range(0..previous.len())]];
            let keep = rng.gen_range(1..=earlier.len());
            let mut shuffled = earlier.clone();
            shuffled.shuffle(rng);
            shuffled.into_iter().take(keep).collect()
        } else {
            let size = sample_size(1, 18.min(list.len().max(1)), 0.35, rng);
            let mut shuffled = list.clone();
            shuffled.shuffle(rng);
            shuffled.into_iter().take(size).collect()
        };
        let sender_id = sender as NodeId;
        if !receivers.contains(&sender_id) {
            receivers.push(sender_id);
        }
        per_sender_emails[sender].push(index);
        edges.push(receivers);
    }
    edges
}

/// Tags: a small vocabulary grouped into topics; posts carry 2–5 tags drawn
/// from one topic plus globally popular tags, so the projected graph is dense
/// and deeply overlapping (frequent all-regions-non-empty motifs).
fn tags(num_nodes: usize, num_edges: usize, rng: &mut StdRng) -> Vec<Vec<NodeId>> {
    let topic_size = 40usize.min(num_nodes).max(4);
    let num_topics = num_nodes.div_ceil(topic_size);
    let topic_sampler = ZipfSampler::new(num_topics, 1.0);
    let tag_popularity = ZipfSampler::new(topic_size, 1.3);
    let global_popular = ZipfSampler::new(num_nodes.min(50), 1.0);

    let mut edges: Vec<Vec<NodeId>> = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let topic = topic_sampler.sample(rng);
        let base = topic * topic_size;
        let span = topic_size.min(num_nodes - base);
        let size = sample_size(2, 5, 0.4, rng);
        let mut members: Vec<NodeId> = tag_popularity
            .sample_distinct(size, rng)
            .into_iter()
            .map(|local| (base + local.min(span - 1)) as NodeId)
            .collect();
        if rng.gen_bool(0.35) {
            let popular = global_popular.sample(rng) as NodeId;
            if !members.contains(&popular) {
                members.push(popular);
            }
        }
        members.sort_unstable();
        members.dedup();
        edges.push(members);
    }
    edges
}

/// Threads: users participate in discussion threads of moderate size; a few
/// hub users appear in a large fraction of threads.
fn threads(num_nodes: usize, num_edges: usize, rng: &mut StdRng) -> Vec<Vec<NodeId>> {
    let activity = ZipfSampler::new(num_nodes, 1.4);
    let mut edges: Vec<Vec<NodeId>> = Vec::with_capacity(num_edges);
    for _ in 0..num_edges {
        let size = sample_size(2, 14, 0.3, rng);
        let mut members: Vec<NodeId> = activity
            .sample_distinct(size, rng)
            .into_iter()
            .map(|v| v as NodeId)
            .collect();
        // Some threads branch off an earlier one, keeping part of the crowd.
        if !edges.is_empty() && rng.gen_bool(0.25) {
            let earlier = &edges[rng.gen_range(0..edges.len())];
            for &user in earlier.iter().take(2) {
                if !members.contains(&user) {
                    members.push(user);
                }
            }
        }
        edges.push(members);
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use mochy_hypergraph::HypergraphStats;

    fn config(kind: DomainKind) -> GeneratorConfig {
        GeneratorConfig::new(kind, 300, 800, 7)
    }

    #[test]
    fn generators_are_deterministic() {
        for kind in DomainKind::ALL {
            let a = generate(&config(kind));
            let b = generate(&config(kind));
            assert_eq!(a, b, "{kind:?} not deterministic");
            let mut different_seed = config(kind);
            different_seed.seed = 8;
            let c = generate(&different_seed);
            assert_ne!(a, c, "{kind:?} ignores the seed");
        }
    }

    #[test]
    fn generators_respect_edge_count_and_node_range() {
        for kind in DomainKind::ALL {
            let cfg = config(kind);
            let h = generate(&cfg);
            assert_eq!(h.num_edges(), cfg.num_edges, "{kind:?}");
            assert!(h.num_nodes() <= cfg.num_nodes + 1, "{kind:?}");
            for (_, members) in h.edges() {
                assert!(!members.is_empty());
                assert!(members.iter().all(|&v| (v as usize) < cfg.num_nodes));
            }
        }
    }

    #[test]
    fn domain_size_profiles_differ() {
        let contact = HypergraphStats::compute(&generate(&config(DomainKind::Contact)));
        let threads = HypergraphStats::compute(&generate(&config(DomainKind::Threads)));
        let email = HypergraphStats::compute(&generate(&config(DomainKind::Email)));
        // Contact interactions are tiny; thread and email hyperedges are larger.
        assert!(contact.max_edge_size <= 6);
        assert!(threads.max_edge_size > contact.max_edge_size);
        assert!(email.max_edge_size > contact.max_edge_size);
    }

    #[test]
    fn coauthorship_exhibits_overlap() {
        let h = generate(&config(DomainKind::Coauthorship));
        // A third of papers reuse a core, so many hyperedges share ≥ 2 nodes.
        let mut sharing_pairs = 0usize;
        let limit = 200.min(h.num_edges() as u32);
        for i in 0..limit {
            for j in (i + 1)..limit {
                if h.intersection_size(i, j) >= 2 {
                    sharing_pairs += 1;
                }
            }
        }
        assert!(sharing_pairs > 10, "only {sharing_pairs} overlapping pairs");
    }

    #[test]
    fn email_contains_sender_in_every_edge() {
        let cfg = config(DomainKind::Email);
        let h = generate(&cfg);
        // Every e-mail hyperedge has at least the sender plus usually some
        // receivers; singleton self-mails are possible but rare.
        let singletons = h.edge_ids().filter(|&e| h.edge_size(e) == 1).count();
        assert!(singletons < h.num_edges() / 4);
    }

    #[test]
    fn short_names_are_unique() {
        let names: std::collections::BTreeSet<_> =
            DomainKind::ALL.iter().map(|k| k.short_name()).collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    #[should_panic(expected = "at least 4 nodes")]
    fn too_few_nodes_rejected() {
        let _ = generate(&GeneratorConfig::new(DomainKind::Tags, 2, 10, 0));
    }
}
