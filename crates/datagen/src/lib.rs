//! Synthetic hypergraph generators.
//!
//! The paper analyses 11 real-world hypergraphs from 5 domains
//! (co-authorship, contact, e-mail, tags, threads). Those datasets cannot be
//! redistributed with this reproduction, so this crate provides seeded,
//! parameterized generators whose overlap structure is tuned per domain so
//! that the qualitative phenomena the paper reports (which motifs are over-
//! or under-represented, how similar profiles are within a domain) re-appear
//! on synthetic data. See DESIGN.md §3.2 for the mapping.
//!
//! - [`domains`] — one generator per domain with a shared configuration type.
//! - [`temporal`] — yearly co-authorship snapshots (Figure 7).
//! - [`suite`] — the "11 datasets / 5 domains" standard suite used by the
//!   experiment binaries.
//! - [`corrupt`] — fake-hyperedge generation for the hyperedge-prediction
//!   task (Table 4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corrupt;
pub mod domains;
pub mod suite;
pub mod temporal;
pub mod util;

pub use corrupt::corrupt_hyperedge;
pub use domains::{generate, DomainKind, GeneratorConfig};
pub use suite::{standard_suite, DatasetSpec, SuiteScale};
pub use temporal::{
    temporal_coauthorship, temporal_event_stream, EdgeEvent, EventStreamConfig, TemporalConfig,
    YearlySnapshot,
};
