//! Fake-hyperedge generation for the hyperedge-prediction task (Section 4.4).
//!
//! Following the paper (and the protocol of Yoon et al. it adopts), negative
//! examples are produced by taking a real hyperedge and replacing a fraction
//! of its members with uniformly random nodes that are not already in it.

use mochy_hypergraph::{Hypergraph, NodeId};
use rand::Rng;

/// Produces a corrupted ("fake") copy of hyperedge `e`: `fraction` of its
/// members (at least one) are replaced with uniformly random other nodes.
/// The result has the same size as the original hyperedge.
pub fn corrupt_hyperedge<R: Rng + ?Sized>(
    hypergraph: &Hypergraph,
    e: u32,
    fraction: f64,
    rng: &mut R,
) -> Vec<NodeId> {
    let original = hypergraph.edge(e);
    let mut members = original.to_vec();
    let num_nodes = hypergraph.num_nodes() as u32;
    if num_nodes <= members.len() as u32 {
        return members; // nothing to swap in
    }
    let num_replace = ((members.len() as f64 * fraction).round() as usize).clamp(1, members.len());
    // Choose which positions to replace.
    let mut positions: Vec<usize> = (0..members.len()).collect();
    for i in (1..positions.len()).rev() {
        positions.swap(i, rng.gen_range(0..=i));
    }
    for &position in positions.iter().take(num_replace) {
        let mut attempts = 0usize;
        loop {
            let candidate = rng.gen_range(0..num_nodes);
            if !members.contains(&candidate) {
                members[position] = candidate;
                break;
            }
            attempts += 1;
            if attempts > 1000 {
                break;
            }
        }
    }
    members.sort_unstable();
    members.dedup();
    members
}

/// Produces one fake hyperedge per real hyperedge of `hypergraph`.
pub fn corrupt_all<R: Rng + ?Sized>(
    hypergraph: &Hypergraph,
    fraction: f64,
    rng: &mut R,
) -> Vec<Vec<NodeId>> {
    hypergraph
        .edge_ids()
        .map(|e| corrupt_hyperedge(hypergraph, e, fraction, rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mochy_hypergraph::HypergraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample() -> Hypergraph {
        let mut builder = HypergraphBuilder::new();
        for i in 0..30u32 {
            builder.add_edge([i, (i + 1) % 30, (i + 7) % 30, (i + 13) % 30]);
        }
        builder.build().unwrap()
    }

    #[test]
    fn corruption_preserves_size_and_changes_content() {
        let h = sample();
        let mut rng = StdRng::seed_from_u64(0);
        let mut changed = 0usize;
        for e in h.edge_ids() {
            let fake = corrupt_hyperedge(&h, e, 0.5, &mut rng);
            assert_eq!(fake.len(), h.edge_size(e));
            if fake != h.edge(e) {
                changed += 1;
            }
        }
        assert!(changed as f64 > 0.9 * h.num_edges() as f64);
    }

    #[test]
    fn corruption_fraction_controls_replacements() {
        let h = sample();
        let mut rng = StdRng::seed_from_u64(1);
        let small = corrupt_hyperedge(&h, 0, 0.25, &mut rng);
        let shared_small = small.iter().filter(|v| h.edge(0).contains(v)).count();
        assert!(
            shared_small >= 2,
            "0.25 corruption should keep most members"
        );
        let large = corrupt_hyperedge(&h, 0, 1.0, &mut rng);
        let shared_large = large.iter().filter(|v| h.edge(0).contains(v)).count();
        assert!(
            shared_large <= 1,
            "full corruption should drop most members"
        );
    }

    #[test]
    fn corrupt_all_matches_edge_count() {
        let h = sample();
        let mut rng = StdRng::seed_from_u64(2);
        let fakes = corrupt_all(&h, 0.5, &mut rng);
        assert_eq!(fakes.len(), h.num_edges());
        for fake in &fakes {
            assert!(!fake.is_empty());
            let mut sorted = fake.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), fake.len(), "duplicate members in fake edge");
        }
    }

    #[test]
    fn tiny_hypergraph_is_handled() {
        let h = HypergraphBuilder::new()
            .with_edge([0u32, 1])
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        // Only two nodes exist, so no replacement is possible.
        let fake = corrupt_hyperedge(&h, 0, 0.5, &mut rng);
        assert_eq!(fake, vec![0, 1]);
    }
}
