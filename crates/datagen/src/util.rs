//! Shared sampling utilities for the generators.

use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;

/// A reusable sampler over `0..n` with Zipf-like weights `w_i ∝ (i + 1)^{-α}`
/// (smaller indices are "more popular"). Used to model skewed popularity of
/// authors, tags, e-mail accounts and thread participants.
pub struct ZipfSampler {
    distribution: WeightedIndex<f64>,
    len: usize,
}

impl ZipfSampler {
    /// Builds a sampler over `0..n` with exponent `alpha ≥ 0`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs a non-empty support");
        let weights: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0).powf(-alpha)).collect();
        Self {
            distribution: WeightedIndex::new(&weights).expect("positive weights"),
            len: n,
        }
    }

    /// Number of items in the support.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the support is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Samples one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.distribution.sample(rng)
    }

    /// Samples `count` *distinct* indices (by rejection); `count` is clamped
    /// to the support size.
    pub fn sample_distinct<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<usize> {
        let count = count.min(self.len);
        let mut chosen = Vec::with_capacity(count);
        let mut attempts = 0usize;
        while chosen.len() < count {
            let candidate = self.sample(rng);
            if !chosen.contains(&candidate) {
                chosen.push(candidate);
            }
            attempts += 1;
            if attempts > 50 * count + 200 {
                // Extremely skewed weights: fill with the smallest unused ids.
                for i in 0..self.len {
                    if chosen.len() == count {
                        break;
                    }
                    if !chosen.contains(&i) {
                        chosen.push(i);
                    }
                }
            }
        }
        chosen
    }
}

/// Samples a hyperedge size from a truncated geometric-like distribution on
/// `[min, max]` with decay `p ∈ (0, 1)`: larger `p` → smaller hyperedges.
pub fn sample_size<R: Rng + ?Sized>(min: usize, max: usize, p: f64, rng: &mut R) -> usize {
    debug_assert!(min <= max);
    let mut size = min;
    while size < max && rng.gen::<f64>() > p {
        size += 1;
    }
    size
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_prefers_small_indices() {
        let sampler = ZipfSampler::new(100, 1.5);
        let mut rng = StdRng::seed_from_u64(0);
        let mut low = 0usize;
        let trials = 5000;
        for _ in 0..trials {
            if sampler.sample(&mut rng) < 10 {
                low += 1;
            }
        }
        assert!(low as f64 / trials as f64 > 0.5, "low fraction {low}");
        assert_eq!(sampler.len(), 100);
        assert!(!sampler.is_empty());
    }

    #[test]
    fn zipf_alpha_zero_is_uniformish() {
        let sampler = ZipfSampler::new(50, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut low = 0usize;
        let trials = 5000;
        for _ in 0..trials {
            if sampler.sample(&mut rng) < 25 {
                low += 1;
            }
        }
        let fraction = low as f64 / trials as f64;
        assert!((fraction - 0.5).abs() < 0.05, "fraction {fraction}");
    }

    #[test]
    fn sample_distinct_yields_unique_items() {
        let sampler = ZipfSampler::new(20, 2.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let sampled = sampler.sample_distinct(8, &mut rng);
            let mut sorted = sampled.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), sampled.len());
            assert_eq!(sampled.len(), 8);
        }
    }

    #[test]
    fn sample_distinct_clamps_to_support() {
        let sampler = ZipfSampler::new(5, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let sampled = sampler.sample_distinct(50, &mut rng);
        assert_eq!(sampled.len(), 5);
    }

    #[test]
    fn size_sampler_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let s = sample_size(2, 6, 0.4, &mut rng);
            assert!((2..=6).contains(&s));
        }
        assert_eq!(sample_size(3, 3, 0.1, &mut rng), 3);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zipf_rejects_empty_support() {
        let _ = ZipfSampler::new(0, 1.0);
    }
}
