//! Yearly co-authorship snapshots for the evolution analysis of Figure 7.
//!
//! The paper builds one hypergraph per publication year (1984–2016) of
//! coauth-DBLP and tracks how the mix of h-motifs changes: team sizes grow
//! and collaborations become less clustered (the fraction of instances of
//! *open* h-motifs rises steadily). The generator below reproduces those two
//! long-term trends with explicitly parameterized drifts, so the downstream
//! analysis has a known ground truth to recover.

use mochy_hypergraph::{Hypergraph, HypergraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::util::{sample_size, ZipfSampler};

/// Configuration of the temporal co-authorship generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TemporalConfig {
    /// First simulated year (the paper uses 1984).
    pub first_year: u32,
    /// Number of consecutive years (the paper uses 33).
    pub num_years: usize,
    /// Size of the author population shared by all years.
    pub num_authors: usize,
    /// Publications generated in the first year; later years grow linearly.
    pub papers_first_year: usize,
    /// Additional publications per year.
    pub papers_growth_per_year: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TemporalConfig {
    fn default() -> Self {
        Self {
            first_year: 1984,
            num_years: 33,
            num_authors: 1500,
            papers_first_year: 300,
            papers_growth_per_year: 25,
            seed: 1984,
        }
    }
}

/// One simulated publication year.
#[derive(Debug, Clone)]
pub struct YearlySnapshot {
    /// Calendar year of the snapshot.
    pub year: u32,
    /// The hypergraph of that year's publications.
    pub hypergraph: Hypergraph,
}

/// Generates one hypergraph per year.
///
/// Two drifts are built in, matching the discussion of Figure 7:
///
/// 1. **Team growth** — the maximum and typical team size increase with the
///    year index.
/// 2. **Declining clustering** — the probability that a new paper reuses the
///    core of an existing paper (which produces *closed* instances) decays
///    over the years, so open instances become relatively more frequent.
pub fn temporal_coauthorship(config: &TemporalConfig) -> Vec<YearlySnapshot> {
    assert!(config.num_years >= 1, "need at least one year");
    assert!(
        config.num_authors >= 16,
        "need a reasonable author population"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let community_size = 24usize.min(config.num_authors);
    let num_communities = config.num_authors.div_ceil(community_size);

    let mut snapshots = Vec::with_capacity(config.num_years);
    for year_index in 0..config.num_years {
        let progress = year_index as f64 / config.num_years.max(1) as f64;
        let num_papers = config.papers_first_year + config.papers_growth_per_year * year_index;
        let community_sampler = ZipfSampler::new(num_communities, 0.4);
        // Early years: collaborations concentrate on a few prolific authors
        // per community (steep productivity skew), so any two papers touching
        // a third usually share the same hub and the triple closes. Later
        // years: productivity flattens and cross-community collaborations
        // become common, so papers increasingly bridge otherwise-disjoint
        // groups — the open-motif fraction rises (Figure 7(b)).
        let productivity = ZipfSampler::new(community_size, 1.5 - 1.2 * progress);
        let cross_probability = 0.03 + 0.35 * progress;
        // Teams grow from ~3 to ~6 expected members over the simulated window.
        let max_team = 4 + (4.0 * progress).round() as usize;
        // Core reuse (which creates closed overlap) decays from 0.6 to 0.1.
        let reuse_probability = 0.6 - 0.5 * progress;

        let mut edges: Vec<Vec<NodeId>> = Vec::with_capacity(num_papers);
        for _ in 0..num_papers {
            let community = community_sampler.sample(&mut rng);
            let base = community * community_size;
            let span = community_size.min(config.num_authors - base).max(2);
            let team_size = sample_size(2, max_team.min(span), 0.35, &mut rng);

            let mut members: Vec<NodeId>;
            if !edges.is_empty() && rng.gen_bool(reuse_probability) {
                let earlier = edges[rng.gen_range(0..edges.len())].clone();
                let core = (earlier.len() / 2).max(1).min(team_size);
                let mut shuffled = earlier;
                shuffled.shuffle(&mut rng);
                members = shuffled.into_iter().take(core).collect();
            } else {
                members = Vec::new();
            }
            let mut attempts = 0usize;
            while members.len() < team_size && attempts < 40 * team_size {
                let candidate = if rng.gen_bool(cross_probability) {
                    // Interdisciplinary co-author from anywhere in the pool.
                    let other_community = rng.gen_range(0..num_communities);
                    let other_base = other_community * community_size;
                    let other_span = community_size.min(config.num_authors - other_base).max(1);
                    (other_base + productivity.sample(&mut rng).min(other_span - 1)) as NodeId
                } else {
                    (base + productivity.sample(&mut rng).min(span - 1)) as NodeId
                };
                if !members.contains(&candidate) {
                    members.push(candidate);
                }
                attempts += 1;
            }
            edges.push(members);
        }
        let mut builder = HypergraphBuilder::with_capacity(edges.len());
        builder.extend_edges(edges);
        snapshots.push(YearlySnapshot {
            year: config.first_year + year_index as u32,
            hypergraph: builder.build().expect("yearly snapshot is non-empty"),
        });
    }
    snapshots
}

/// One mutation of an evolving hypergraph, as consumed by the streaming
/// counter (`mochy_core::streaming::StreamingEngine`).
///
/// Insertions are numbered implicitly by their position in the stream: the
/// `n`-th `Insert` event has sequence number `n` (0-based), and `Remove`
/// events refer to that number. The driver maps sequence numbers to the
/// engine-assigned edge ids (they coincide for an engine that starts empty,
/// since ids are handed out 0, 1, 2, … and never reused).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EdgeEvent {
    /// A new hyperedge appears.
    Insert {
        /// Its member nodes (unsorted; the consumer normalizes).
        members: Vec<NodeId>,
    },
    /// A previously inserted hyperedge disappears.
    Remove {
        /// Sequence number of the corresponding `Insert` event.
        seq: usize,
    },
    /// End of a simulated year: consumers snapshot their state here.
    Checkpoint {
        /// Calendar year just completed.
        year: u32,
    },
}

/// Configuration of [`temporal_event_stream`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventStreamConfig {
    /// The underlying yearly co-authorship generator.
    pub temporal: TemporalConfig,
    /// When `Some(w)`, only the last `w` years of publications stay live: at
    /// the start of each year, the papers of year `current − w` are removed.
    /// `None` keeps every paper forever (insert-only stream).
    pub window_years: Option<usize>,
}

/// Renders the yearly co-authorship generator as an *event stream*: per
/// year, first the removals that fall out of the sliding window, then one
/// insertion per new publication, then a [`EdgeEvent::Checkpoint`]. This is
/// the workload of the streaming engine — the paper's Figure 7 analysis
/// recast as continuous evolution instead of independent per-year batches.
pub fn temporal_event_stream(config: &EventStreamConfig) -> Vec<EdgeEvent> {
    if let Some(window) = config.window_years {
        assert!(window >= 1, "window must cover at least one year");
    }
    let snapshots = temporal_coauthorship(&config.temporal);
    let mut events = Vec::new();
    // Per-year range of insertion sequence numbers, for window eviction.
    let mut year_ranges: Vec<(usize, usize)> = Vec::with_capacity(snapshots.len());
    let mut next_seq = 0usize;
    for (index, snapshot) in snapshots.iter().enumerate() {
        if let Some(window) = config.window_years {
            if index >= window {
                let (start, end) = year_ranges[index - window];
                events.extend((start..end).map(|seq| EdgeEvent::Remove { seq }));
            }
        }
        let start = next_seq;
        for (_, members) in snapshot.hypergraph.edges() {
            events.push(EdgeEvent::Insert {
                members: members.to_vec(),
            });
            next_seq += 1;
        }
        year_ranges.push((start, next_seq));
        events.push(EdgeEvent::Checkpoint {
            year: snapshot.year,
        });
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> TemporalConfig {
        TemporalConfig {
            first_year: 2000,
            num_years: 6,
            num_authors: 200,
            papers_first_year: 80,
            papers_growth_per_year: 20,
            seed: 3,
        }
    }

    #[test]
    fn produces_requested_years() {
        let snapshots = temporal_coauthorship(&small_config());
        assert_eq!(snapshots.len(), 6);
        assert_eq!(snapshots[0].year, 2000);
        assert_eq!(snapshots[5].year, 2005);
    }

    #[test]
    fn paper_counts_grow_linearly() {
        let snapshots = temporal_coauthorship(&small_config());
        for (i, snapshot) in snapshots.iter().enumerate() {
            assert_eq!(snapshot.hypergraph.num_edges(), 80 + 20 * i);
        }
    }

    #[test]
    fn team_sizes_grow_over_time() {
        let config = TemporalConfig {
            num_years: 10,
            ..small_config()
        };
        let snapshots = temporal_coauthorship(&config);
        let mean_size =
            |h: &Hypergraph| h.edge_sizes().iter().sum::<usize>() as f64 / h.num_edges() as f64;
        let early = mean_size(&snapshots[0].hypergraph);
        let late = mean_size(&snapshots[9].hypergraph);
        assert!(late > early, "late {late} not larger than early {early}");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = temporal_coauthorship(&small_config());
        let b = temporal_coauthorship(&small_config());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.hypergraph, y.hypergraph);
        }
    }

    #[test]
    #[should_panic(expected = "at least one year")]
    fn zero_years_rejected() {
        let config = TemporalConfig {
            num_years: 0,
            ..small_config()
        };
        let _ = temporal_coauthorship(&config);
    }

    /// Replays an event stream over a plain live-set, asserting stream
    /// well-formedness (every removal refers to a live insertion, no double
    /// removal) and returning the live-count trajectory at checkpoints.
    fn replay(events: &[EdgeEvent]) -> Vec<(u32, usize)> {
        let mut live = Vec::new();
        let mut inserted = 0usize;
        let mut trajectory = Vec::new();
        for event in events {
            match event {
                EdgeEvent::Insert { members } => {
                    assert!(!members.is_empty());
                    live.push(inserted);
                    inserted += 1;
                }
                EdgeEvent::Remove { seq } => {
                    let position = live
                        .iter()
                        .position(|s| s == seq)
                        .unwrap_or_else(|| panic!("removal of dead/unknown seq {seq}"));
                    live.remove(position);
                }
                EdgeEvent::Checkpoint { year } => trajectory.push((*year, live.len())),
            }
        }
        trajectory
    }

    #[test]
    fn cumulative_stream_has_no_removals_and_yearly_checkpoints() {
        let events = temporal_event_stream(&EventStreamConfig {
            temporal: small_config(),
            window_years: None,
        });
        assert!(!events.iter().any(|e| matches!(e, EdgeEvent::Remove { .. })));
        let trajectory = replay(&events);
        assert_eq!(trajectory.len(), 6);
        // Live count accumulates the linearly growing yearly paper counts.
        let mut expected = 0usize;
        for (i, &(year, live)) in trajectory.iter().enumerate() {
            expected += 80 + 20 * i;
            assert_eq!(year, 2000 + i as u32);
            assert_eq!(live, expected);
        }
    }

    #[test]
    fn windowed_stream_keeps_exactly_the_last_years_live() {
        let window = 2usize;
        let events = temporal_event_stream(&EventStreamConfig {
            temporal: small_config(),
            window_years: Some(window),
        });
        assert!(events.iter().any(|e| matches!(e, EdgeEvent::Remove { .. })));
        let trajectory = replay(&events);
        for (i, &(_, live)) in trajectory.iter().enumerate() {
            let expected: usize = (i.saturating_sub(window - 1)..=i)
                .map(|y| 80 + 20 * y)
                .sum();
            assert_eq!(live, expected, "checkpoint {i}");
        }
    }

    #[test]
    fn event_stream_is_deterministic() {
        let config = EventStreamConfig {
            temporal: small_config(),
            window_years: Some(3),
        };
        assert_eq!(
            temporal_event_stream(&config),
            temporal_event_stream(&config)
        );
    }

    #[test]
    #[should_panic(expected = "at least one year")]
    fn zero_window_rejected() {
        let _ = temporal_event_stream(&EventStreamConfig {
            temporal: small_config(),
            window_years: Some(0),
        });
    }
}
