//! Yearly co-authorship snapshots for the evolution analysis of Figure 7.
//!
//! The paper builds one hypergraph per publication year (1984–2016) of
//! coauth-DBLP and tracks how the mix of h-motifs changes: team sizes grow
//! and collaborations become less clustered (the fraction of instances of
//! *open* h-motifs rises steadily). The generator below reproduces those two
//! long-term trends with explicitly parameterized drifts, so the downstream
//! analysis has a known ground truth to recover.

use mochy_hypergraph::{Hypergraph, HypergraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::util::{sample_size, ZipfSampler};

/// Configuration of the temporal co-authorship generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TemporalConfig {
    /// First simulated year (the paper uses 1984).
    pub first_year: u32,
    /// Number of consecutive years (the paper uses 33).
    pub num_years: usize,
    /// Size of the author population shared by all years.
    pub num_authors: usize,
    /// Publications generated in the first year; later years grow linearly.
    pub papers_first_year: usize,
    /// Additional publications per year.
    pub papers_growth_per_year: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TemporalConfig {
    fn default() -> Self {
        Self {
            first_year: 1984,
            num_years: 33,
            num_authors: 1500,
            papers_first_year: 300,
            papers_growth_per_year: 25,
            seed: 1984,
        }
    }
}

/// One simulated publication year.
#[derive(Debug, Clone)]
pub struct YearlySnapshot {
    /// Calendar year of the snapshot.
    pub year: u32,
    /// The hypergraph of that year's publications.
    pub hypergraph: Hypergraph,
}

/// Generates one hypergraph per year.
///
/// Two drifts are built in, matching the discussion of Figure 7:
///
/// 1. **Team growth** — the maximum and typical team size increase with the
///    year index.
/// 2. **Declining clustering** — the probability that a new paper reuses the
///    core of an existing paper (which produces *closed* instances) decays
///    over the years, so open instances become relatively more frequent.
pub fn temporal_coauthorship(config: &TemporalConfig) -> Vec<YearlySnapshot> {
    assert!(config.num_years >= 1, "need at least one year");
    assert!(
        config.num_authors >= 16,
        "need a reasonable author population"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let community_size = 24usize.min(config.num_authors);
    let num_communities = config.num_authors.div_ceil(community_size);

    let mut snapshots = Vec::with_capacity(config.num_years);
    for year_index in 0..config.num_years {
        let progress = year_index as f64 / config.num_years.max(1) as f64;
        let num_papers = config.papers_first_year + config.papers_growth_per_year * year_index;
        let community_sampler = ZipfSampler::new(num_communities, 0.4);
        // Early years: collaborations concentrate on a few prolific authors
        // per community (steep productivity skew), so any two papers touching
        // a third usually share the same hub and the triple closes. Later
        // years: productivity flattens and cross-community collaborations
        // become common, so papers increasingly bridge otherwise-disjoint
        // groups — the open-motif fraction rises (Figure 7(b)).
        let productivity = ZipfSampler::new(community_size, 1.5 - 1.2 * progress);
        let cross_probability = 0.03 + 0.35 * progress;
        // Teams grow from ~3 to ~6 expected members over the simulated window.
        let max_team = 4 + (4.0 * progress).round() as usize;
        // Core reuse (which creates closed overlap) decays from 0.6 to 0.1.
        let reuse_probability = 0.6 - 0.5 * progress;

        let mut edges: Vec<Vec<NodeId>> = Vec::with_capacity(num_papers);
        for _ in 0..num_papers {
            let community = community_sampler.sample(&mut rng);
            let base = community * community_size;
            let span = community_size.min(config.num_authors - base).max(2);
            let team_size = sample_size(2, max_team.min(span), 0.35, &mut rng);

            let mut members: Vec<NodeId>;
            if !edges.is_empty() && rng.gen_bool(reuse_probability) {
                let earlier = edges[rng.gen_range(0..edges.len())].clone();
                let core = (earlier.len() / 2).max(1).min(team_size);
                let mut shuffled = earlier;
                shuffled.shuffle(&mut rng);
                members = shuffled.into_iter().take(core).collect();
            } else {
                members = Vec::new();
            }
            let mut attempts = 0usize;
            while members.len() < team_size && attempts < 40 * team_size {
                let candidate = if rng.gen_bool(cross_probability) {
                    // Interdisciplinary co-author from anywhere in the pool.
                    let other_community = rng.gen_range(0..num_communities);
                    let other_base = other_community * community_size;
                    let other_span = community_size.min(config.num_authors - other_base).max(1);
                    (other_base + productivity.sample(&mut rng).min(other_span - 1)) as NodeId
                } else {
                    (base + productivity.sample(&mut rng).min(span - 1)) as NodeId
                };
                if !members.contains(&candidate) {
                    members.push(candidate);
                }
                attempts += 1;
            }
            edges.push(members);
        }
        let mut builder = HypergraphBuilder::with_capacity(edges.len());
        builder.extend_edges(edges);
        snapshots.push(YearlySnapshot {
            year: config.first_year + year_index as u32,
            hypergraph: builder.build().expect("yearly snapshot is non-empty"),
        });
    }
    snapshots
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> TemporalConfig {
        TemporalConfig {
            first_year: 2000,
            num_years: 6,
            num_authors: 200,
            papers_first_year: 80,
            papers_growth_per_year: 20,
            seed: 3,
        }
    }

    #[test]
    fn produces_requested_years() {
        let snapshots = temporal_coauthorship(&small_config());
        assert_eq!(snapshots.len(), 6);
        assert_eq!(snapshots[0].year, 2000);
        assert_eq!(snapshots[5].year, 2005);
    }

    #[test]
    fn paper_counts_grow_linearly() {
        let snapshots = temporal_coauthorship(&small_config());
        for (i, snapshot) in snapshots.iter().enumerate() {
            assert_eq!(snapshot.hypergraph.num_edges(), 80 + 20 * i);
        }
    }

    #[test]
    fn team_sizes_grow_over_time() {
        let config = TemporalConfig {
            num_years: 10,
            ..small_config()
        };
        let snapshots = temporal_coauthorship(&config);
        let mean_size =
            |h: &Hypergraph| h.edge_sizes().iter().sum::<usize>() as f64 / h.num_edges() as f64;
        let early = mean_size(&snapshots[0].hypergraph);
        let late = mean_size(&snapshots[9].hypergraph);
        assert!(late > early, "late {late} not larger than early {early}");
    }

    #[test]
    fn deterministic_in_seed() {
        let a = temporal_coauthorship(&small_config());
        let b = temporal_coauthorship(&small_config());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.hypergraph, y.hypergraph);
        }
    }

    #[test]
    #[should_panic(expected = "at least one year")]
    fn zero_years_rejected() {
        let config = TemporalConfig {
            num_years: 0,
            ..small_config()
        };
        let _ = temporal_coauthorship(&config);
    }
}
