//! The standard "11 datasets from 5 domains" suite used by the experiments.
//!
//! The paper's Table 2 lists eleven datasets. This module instantiates eleven
//! synthetic counterparts (same domain split: 3 co-authorship, 2 contact,
//! 2 e-mail, 2 tags, 2 threads) at a configurable scale so that experiments
//! run in seconds (`Small`), minutes (`Medium`) or longer (`Large`) while the
//! relative structure between domains is unchanged.

use mochy_hypergraph::Hypergraph;
use serde::{Deserialize, Serialize};

use crate::domains::{generate, DomainKind, GeneratorConfig};

/// Scale of the standard suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SuiteScale {
    /// Unit-test scale: hundreds of hyperedges per dataset.
    Tiny,
    /// Example/CI scale: a few thousand hyperedges per dataset.
    Small,
    /// Experiment scale: tens of thousands of hyperedges per dataset.
    Medium,
    /// Stress scale: hundreds of thousands of hyperedges per dataset.
    Large,
}

impl SuiteScale {
    fn multiplier(&self) -> usize {
        match self {
            SuiteScale::Tiny => 1,
            SuiteScale::Small => 8,
            SuiteScale::Medium => 40,
            SuiteScale::Large => 400,
        }
    }

    /// Scale factor applied to the hyperedge counts. `Tiny` keeps the node
    /// universes of the base suite but halves the hyperedge counts so that
    /// exact counting on every dataset stays in unit-test territory.
    fn edge_factor(&self) -> f64 {
        match self {
            SuiteScale::Tiny => 0.5,
            _ => self.multiplier() as f64,
        }
    }
}

/// Description of one dataset of the suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset label, mirroring the paper's naming (e.g. `"coauth-alpha"`).
    pub name: String,
    /// Domain the dataset belongs to.
    pub domain: DomainKind,
    /// Generator configuration used to materialize the dataset.
    pub config: GeneratorConfig,
}

impl DatasetSpec {
    /// Materializes the dataset.
    pub fn build(&self) -> Hypergraph {
        generate(&self.config)
    }
}

/// The eleven dataset specifications of the standard suite at `scale`.
///
/// Per-domain parameters follow the qualitative shape of Table 2: contact and
/// tags hypergraphs have few nodes and many hyperedges, co-authorship
/// hypergraphs have many nodes relative to hyperedges, and so on.
pub fn standard_suite(scale: SuiteScale) -> Vec<DatasetSpec> {
    let m = scale.multiplier();
    let f = scale.edge_factor();
    let spec =
        |name: &str, domain: DomainKind, nodes: usize, edges: usize, seed: u64| DatasetSpec {
            name: name.to_string(),
            domain,
            config: GeneratorConfig::new(
                domain,
                nodes,
                ((edges as f64 * f) as usize).max(40),
                seed,
            ),
        };
    vec![
        spec("coauth-alpha", DomainKind::Coauthorship, 420 * m, 500, 101),
        spec("coauth-beta", DomainKind::Coauthorship, 360 * m, 420, 102),
        spec("coauth-gamma", DomainKind::Coauthorship, 300 * m, 350, 103),
        spec("contact-primary", DomainKind::Contact, 240, 700, 201),
        spec("contact-high", DomainKind::Contact, 320, 550, 202),
        spec("email-enron", DomainKind::Email, 150, 400, 301),
        spec("email-eu", DomainKind::Email, 900, 800, 302),
        spec("tags-ubuntu", DomainKind::Tags, 2_900, 900, 401),
        spec("tags-math", DomainKind::Tags, 1_600, 1_000, 402),
        spec(
            "threads-ubuntu",
            DomainKind::Threads,
            1_200 * m / 2 + 600,
            600,
            501,
        ),
        spec(
            "threads-math",
            DomainKind::Threads,
            1_700 * m / 2 + 600,
            800,
            502,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eleven_datasets_from_five_domains() {
        let suite = standard_suite(SuiteScale::Tiny);
        assert_eq!(suite.len(), 11);
        let domains: std::collections::BTreeSet<_> =
            suite.iter().map(|s| s.domain.short_name()).collect();
        assert_eq!(domains.len(), 5);
        // Names are unique.
        let names: std::collections::BTreeSet<_> = suite.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names.len(), 11);
    }

    #[test]
    fn tiny_suite_builds_quickly_and_consistently() {
        for spec in standard_suite(SuiteScale::Tiny) {
            let h = spec.build();
            assert_eq!(h.num_edges(), spec.config.num_edges, "{}", spec.name);
            assert!(h.num_nodes() > 0);
        }
    }

    #[test]
    fn scales_are_ordered() {
        assert!(SuiteScale::Tiny.multiplier() < SuiteScale::Small.multiplier());
        assert!(SuiteScale::Small.multiplier() < SuiteScale::Medium.multiplier());
        assert!(SuiteScale::Medium.multiplier() < SuiteScale::Large.multiplier());
    }

    #[test]
    fn datasets_within_a_domain_share_the_domain_but_not_the_seed() {
        let suite = standard_suite(SuiteScale::Tiny);
        let coauth: Vec<_> = suite
            .iter()
            .filter(|s| s.domain == DomainKind::Coauthorship)
            .collect();
        assert_eq!(coauth.len(), 3);
        assert_ne!(coauth[0].config.seed, coauth[1].config.seed);
    }
}
