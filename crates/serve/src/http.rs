//! A minimal HTTP/1.1 front end: persistent (keep-alive) request reading
//! over a rolling per-connection buffer, and a response writer.
//!
//! The sandbox is offline and the workspace vendors no HTTP stack, so the
//! serve layer speaks the small, well-defined subset of HTTP/1.1 its JSON
//! API needs: persistent connections with `Content-Length`-delimited bodies
//! and pipelined requests parsed out of a rolling buffer. `Connection:
//! keep-alive|close` is honored (HTTP/1.1 defaults to keep-alive, HTTP/1.0
//! to close); there is no chunked transfer. Every parse failure is an error
//! value — client-supplied bytes must never panic the server — and every
//! wait is bounded: a fresh request must *start* within the caller's idle
//! deadline and *complete* within the request deadline, so neither silent
//! nor slow-drip clients can pin a worker.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method (`GET`, `POST`, …), uppercase as sent.
    pub method: String,
    /// The request path, query string stripped (the API uses none).
    pub path: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: String,
    /// Whether the client allows the connection to persist after this
    /// exchange: `Connection: close` (or HTTP/1.0 without an explicit
    /// `keep-alive`) turns it off.
    pub keep_alive: bool,
}

/// Whether the connection persists after a response is written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Persistence {
    /// The connection stays open for further exchanges.
    KeepAlive,
    /// The connection closes after this response.
    Close,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RequestError {
    /// The bytes on the wire are not a well-formed HTTP/1.1 request.
    BadRequest(String),
    /// The declared `Content-Length` exceeds the configured limit.
    PayloadTooLarge(usize),
    /// The socket failed or timed out before a full request arrived.
    Io(std::io::Error),
    /// The peer closed the connection cleanly between requests — the normal
    /// end of a keep-alive session, not an error to answer.
    Closed,
    /// No new request started within the idle deadline; the caller should
    /// close the idle connection silently.
    IdleTimeout,
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::BadRequest(why) => write!(f, "bad request: {why}"),
            RequestError::PayloadTooLarge(limit) => {
                write!(f, "request body exceeds {limit} bytes")
            }
            RequestError::Io(error) => write!(f, "i/o error: {error}"),
            RequestError::Closed => write!(f, "connection closed between requests"),
            RequestError::IdleTimeout => write!(f, "no request within the idle deadline"),
        }
    }
}

/// The receive side of one persistent connection: a rolling buffer that
/// survives across requests, so bytes of a pipelined follow-up request that
/// arrive in the same `read` as the current one are kept, not dropped.
#[derive(Debug, Default)]
pub struct ConnectionBuffer {
    buffer: Vec<u8>,
}

impl ConnectionBuffer {
    /// An empty rolling buffer for a fresh connection.
    pub fn new() -> Self {
        Self {
            buffer: Vec::with_capacity(1024),
        }
    }

    /// Bytes buffered but not yet consumed by a parsed request (a non-empty
    /// value means a pipelined request is already in flight).
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }
}

/// Reads the next HTTP/1.1 request of a persistent connection.
///
/// Timing is two-phase, which is what makes keep-alive safe to serve from a
/// bounded worker pool:
///
/// - **idle phase** — while the rolling buffer is empty and no byte of a
///   new request has arrived, the wait is bounded by `idle_deadline`;
///   expiry is [`RequestError::IdleTimeout`] (close silently, nothing to
///   answer). A clean EOF here is [`RequestError::Closed`].
/// - **request phase** — from the first buffered byte, the *whole* request
///   must complete within `request_deadline` (a per-read timeout alone
///   would reset on every byte, letting a slow-drip client hold a resident
///   worker indefinitely).
///
/// Bodies larger than `max_body_bytes` are rejected without being read.
/// Bytes beyond the parsed request (pipelined follow-ups) stay in `rolling`
/// for the next call.
pub fn read_request(
    stream: &mut TcpStream,
    rolling: &mut ConnectionBuffer,
    max_body_bytes: usize,
    idle_deadline: Duration,
    request_deadline: Duration,
) -> Result<Request, RequestError> {
    // Idle phase: wait (bounded) for the first byte of a new request.
    if rolling.buffer.is_empty() {
        let mut chunk = [0u8; 1024];
        let _ = stream.set_read_timeout(Some(idle_deadline.max(Duration::from_millis(1))));
        match stream.read(&mut chunk) {
            Ok(0) => return Err(RequestError::Closed),
            Ok(read) => rolling
                .buffer
                .extend_from_slice(chunk.get(..read).unwrap_or(chunk.as_slice())),
            Err(error)
                if matches!(
                    error.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Err(RequestError::IdleTimeout)
            }
            Err(error) => return Err(RequestError::Io(error)),
        }
    }

    // Request phase: the clock starts at the first byte.
    let started = Instant::now();
    // One bounded read: caps each wait at the time left before the overall
    // request deadline, and maps deadline exhaustion to a timeout error.
    let deadline_read = |stream: &mut TcpStream, chunk: &mut [u8]| -> Result<usize, RequestError> {
        let remaining = request_deadline.saturating_sub(started.elapsed());
        if remaining.is_zero() {
            return Err(RequestError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "request did not complete within the deadline",
            )));
        }
        // set_read_timeout rejects a zero Duration; `remaining` is non-zero.
        let _ = stream.set_read_timeout(Some(remaining));
        stream.read(chunk).map_err(RequestError::Io)
    };

    // Read until the blank line terminating the head.
    let buffer = &mut rolling.buffer;
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(position) = find_head_end(buffer) {
            break position;
        }
        if buffer.len() > MAX_HEAD_BYTES {
            return Err(RequestError::BadRequest(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        let read = deadline_read(stream, &mut chunk)?;
        if read == 0 {
            return Err(RequestError::BadRequest(
                "connection closed mid-request".to_string(),
            ));
        }
        buffer.extend_from_slice(chunk.get(..read).unwrap_or(chunk.as_slice()));
    };

    // Parse the head into owned values: the borrow must end before the body
    // loop extends (and finally drains) the buffer.
    let (method, path, keep_alive, content_length) = {
        let head = buffer
            .get(..head_end)
            .and_then(|head| std::str::from_utf8(head).ok())
            .ok_or_else(|| RequestError::BadRequest("request head is not utf-8".to_string()))?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or_default();
        let mut parts = request_line.split(' ');
        let (method, target, version) =
            match (parts.next(), parts.next(), parts.next(), parts.next()) {
                (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
                _ => {
                    return Err(RequestError::BadRequest(format!(
                        "malformed request line `{request_line}`"
                    )))
                }
            };
        if !version.starts_with("HTTP/1.") {
            return Err(RequestError::BadRequest(format!(
                "unsupported protocol `{version}`"
            )));
        }
        // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; an explicit
        // `Connection` header overrides either default.
        let mut keep_alive = version != "HTTP/1.0";

        let mut content_length = 0usize;
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                continue;
            };
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| RequestError::BadRequest("bad content-length".to_string()))?;
            } else if name.eq_ignore_ascii_case("connection") {
                let value = value.trim();
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        }
        let path = target.split('?').next().unwrap_or(target).to_string();
        (method.to_string(), path, keep_alive, content_length)
    };
    if content_length > max_body_bytes {
        return Err(RequestError::PayloadTooLarge(max_body_bytes));
    }

    // The body: whatever followed the head in the buffer, plus the rest.
    // `body_end` cannot overflow: both terms are bounded by the head and
    // body caps just enforced.
    let body_start = head_end.saturating_add(4);
    let body_end = body_start.saturating_add(content_length);
    while buffer.len() < body_end {
        let read = deadline_read(stream, &mut chunk)?;
        if read == 0 {
            return Err(RequestError::BadRequest(
                "connection closed mid-body".to_string(),
            ));
        }
        buffer.extend_from_slice(chunk.get(..read).unwrap_or(chunk.as_slice()));
    }
    let body = buffer
        .get(body_start..body_end)
        .unwrap_or_default()
        .to_vec();
    // Consume this request; pipelined follow-up bytes stay for the next call.
    buffer.drain(..body_end.min(buffer.len()));
    let body = String::from_utf8(body)
        .map_err(|_| RequestError::BadRequest("request body is not utf-8".to_string()))?;

    Ok(Request {
        method,
        path,
        body,
        keep_alive,
    })
}

fn find_head_end(buffer: &[u8]) -> Option<usize> {
    buffer.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The reason phrase of the status codes the API emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete HTTP/1.1 response with a JSON body. `persistence`
/// controls the `connection:` header — the caller decides whether the
/// exchange ends the session (client asked to close, request cap reached,
/// error, shutdown) or the connection stays open for the next request.
/// Write errors are returned for the caller to log-and-drop; a client that
/// hung up mid-response is its own problem.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &str,
    persistence: Persistence,
) -> std::io::Result<()> {
    let connection = match persistence {
        Persistence::KeepAlive => "keep-alive",
        Persistence::Close => "close",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {connection}\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    use std::time::Duration;

    const IDLE: Duration = Duration::from_secs(10);
    const REQUEST: Duration = Duration::from_secs(10);

    /// Round-trips raw bytes through a loopback socket into `read_request`.
    fn parse_raw(raw: &[u8]) -> Result<Request, RequestError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(&raw).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let mut rolling = ConnectionBuffer::new();
        let request = read_request(&mut stream, &mut rolling, 4096, IDLE, REQUEST);
        writer.join().unwrap();
        request
    }

    #[test]
    fn parses_get_and_post_requests() {
        let request = parse_raw(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/healthz");
        assert_eq!(request.body, "");
        assert!(request.keep_alive, "HTTP/1.1 defaults to keep-alive");

        let request =
            parse_raw(b"POST /count?x=1 HTTP/1.1\r\nContent-Length: 7\r\nHost: x\r\n\r\n{\"a\":1}")
                .unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/count");
        assert_eq!(request.body, "{\"a\":1}");
    }

    #[test]
    fn connection_header_and_version_drive_keep_alive() {
        let close = parse_raw(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!close.keep_alive);
        let case = parse_raw(b"GET / HTTP/1.1\r\nCONNECTION: Close\r\n\r\n").unwrap();
        assert!(
            !case.keep_alive,
            "header name and value are case-insensitive"
        );
        let old = parse_raw(b"GET / HTTP/1.0\r\nHost: x\r\n\r\n").unwrap();
        assert!(!old.keep_alive, "HTTP/1.0 defaults to close");
        let old_ka = parse_raw(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(
            old_ka.keep_alive,
            "explicit keep-alive overrides the 1.0 default"
        );
    }

    #[test]
    fn pipelined_requests_parse_from_one_buffer() {
        // Two requests sent back-to-back in a single write: the first parse
        // must leave the second intact in the rolling buffer, and the second
        // parse must not need any fresh socket bytes.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .write_all(
                    b"POST /count HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}\
                      GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
                )
                .unwrap();
            // Keep the socket open so reads would block, proving the second
            // request comes from the buffer alone.
            std::thread::sleep(Duration::from_millis(300));
        });
        let (mut stream, _) = listener.accept().unwrap();
        let mut rolling = ConnectionBuffer::new();
        let first = read_request(&mut stream, &mut rolling, 4096, IDLE, REQUEST).unwrap();
        assert_eq!(first.path, "/count");
        assert_eq!(first.body, "{\"a\":1}");
        assert!(rolling.pending() > 0, "second request must be buffered");
        let second = read_request(
            &mut stream,
            &mut rolling,
            4096,
            IDLE,
            Duration::from_millis(100),
        )
        .unwrap();
        assert_eq!(second.path, "/healthz");
        assert!(!second.keep_alive);
        assert_eq!(rolling.pending(), 0);
        writer.join().unwrap();
    }

    #[test]
    fn pipelined_requests_survive_arbitrary_read_boundaries() {
        // The same two-request byte stream, dripped at every possible split
        // point: the rolling buffer must reassemble both requests no matter
        // where the reads land.
        let raw: &[u8] = b"POST /count HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}\
                           GET /healthz HTTP/1.1\r\n\r\n";
        for split in 1..raw.len() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let (first_half, second_half) = (raw[..split].to_vec(), raw[split..].to_vec());
            let writer = std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                stream.write_all(&first_half).unwrap();
                stream.flush().unwrap();
                std::thread::sleep(Duration::from_millis(2));
                stream.write_all(&second_half).unwrap();
            });
            let (mut stream, _) = listener.accept().unwrap();
            let mut rolling = ConnectionBuffer::new();
            let first = read_request(&mut stream, &mut rolling, 4096, IDLE, REQUEST)
                .unwrap_or_else(|e| panic!("split {split}: first request failed: {e}"));
            assert_eq!(first.path, "/count", "split {split}");
            assert_eq!(first.body, "{\"a\":1}", "split {split}");
            let second = read_request(&mut stream, &mut rolling, 4096, IDLE, REQUEST)
                .unwrap_or_else(|e| panic!("split {split}: second request failed: {e}"));
            assert_eq!(second.path, "/healthz", "split {split}");
            writer.join().unwrap();
        }
    }

    #[test]
    fn rejects_malformed_and_oversized_requests() {
        assert!(matches!(
            parse_raw(b"NOT-HTTP\r\n\r\n"),
            Err(RequestError::BadRequest(_))
        ));
        assert!(matches!(
            parse_raw(b"GET / SPDY/3\r\n\r\n"),
            Err(RequestError::BadRequest(_))
        ));
        assert!(matches!(
            parse_raw(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"),
            Err(RequestError::BadRequest(_))
        ));
        assert!(matches!(
            parse_raw(b"POST / HTTP/1.1\r\nContent-Length: 100000\r\n\r\n"),
            Err(RequestError::PayloadTooLarge(_))
        ));
        assert!(matches!(
            parse_raw(b"GET / HTTP/1.1\r\nHo"),
            Err(RequestError::BadRequest(_))
        ));
    }

    #[test]
    fn clean_close_and_idle_silence_report_their_own_variants() {
        // EOF before any byte of a new request: Closed, not BadRequest.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            drop(stream);
        });
        let (mut stream, _) = listener.accept().unwrap();
        let mut rolling = ConnectionBuffer::new();
        let result = read_request(&mut stream, &mut rolling, 4096, IDLE, REQUEST);
        assert!(matches!(result, Err(RequestError::Closed)), "{result:?}");
        writer.join().unwrap();

        // A connection that sends nothing within the idle deadline: the
        // caller learns it timed out idle (close silently), distinct from a
        // mid-request timeout (answer 408).
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let _stream = TcpStream::connect(addr).unwrap();
            std::thread::sleep(Duration::from_millis(500));
        });
        let (mut stream, _) = listener.accept().unwrap();
        let mut rolling = ConnectionBuffer::new();
        let started = Instant::now();
        let result = read_request(
            &mut stream,
            &mut rolling,
            4096,
            Duration::from_millis(100),
            REQUEST,
        );
        assert!(
            matches!(result, Err(RequestError::IdleTimeout)),
            "{result:?}"
        );
        assert!(started.elapsed() < Duration::from_secs(2));
        writer.join().unwrap();
    }

    #[test]
    fn slow_drip_requests_hit_the_overall_deadline() {
        // A client that keeps trickling bytes resets any per-read timeout,
        // but must not outlive the per-request deadline.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            // Drip a byte every 50 ms, far more often than any read times
            // out, without ever finishing the head.
            for _ in 0..40 {
                if stream.write_all(b"G").is_err() {
                    return; // server gave up — exactly what we assert below
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        });
        let (mut stream, _) = listener.accept().unwrap();
        let started = std::time::Instant::now();
        let mut rolling = ConnectionBuffer::new();
        let result = read_request(
            &mut stream,
            &mut rolling,
            4096,
            IDLE,
            Duration::from_millis(300),
        );
        assert!(
            matches!(result, Err(RequestError::Io(_))),
            "slow drip must time out, got {result:?}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "deadline did not bound the request"
        );
        drop(stream);
        writer.join().unwrap();
    }

    #[test]
    fn response_writer_emits_parseable_http() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            write_response(
                &mut stream,
                200,
                &[("x-test", "yes")],
                "{\"ok\":true}",
                Persistence::Close,
            )
            .unwrap();
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        writer.join().unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("x-test: yes\r\n"));
        assert!(response.contains("connection: close\r\n"));
        assert!(response.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn keep_alive_responses_carry_the_persistent_header() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            write_response(&mut stream, 200, &[], "{}", Persistence::KeepAlive).unwrap();
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut head = [0u8; 256];
        let read = stream.read(&mut head).unwrap();
        let head = std::str::from_utf8(&head[..read]).unwrap();
        writer.join().unwrap();
        assert!(head.contains("connection: keep-alive\r\n"), "{head}");
    }
}
