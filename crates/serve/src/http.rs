//! A minimal HTTP/1.1 request reader and response writer.
//!
//! The sandbox is offline and the workspace vendors no HTTP stack, so the
//! serve layer speaks the small, well-defined subset of HTTP/1.1 its JSON
//! API needs: one request per connection (`Connection: close`), bodies
//! delimited by `Content-Length`, no chunked transfer, no keep-alive. Every
//! parse failure is an error value — client-supplied bytes must never panic
//! the server.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method (`GET`, `POST`, …), uppercase as sent.
    pub method: String,
    /// The request path, query string stripped (the API uses none).
    pub path: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: String,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RequestError {
    /// The bytes on the wire are not a well-formed HTTP/1.1 request.
    BadRequest(String),
    /// The declared `Content-Length` exceeds the configured limit.
    PayloadTooLarge(usize),
    /// The socket failed or timed out before a full request arrived.
    Io(std::io::Error),
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RequestError::BadRequest(why) => write!(f, "bad request: {why}"),
            RequestError::PayloadTooLarge(limit) => {
                write!(f, "request body exceeds {limit} bytes")
            }
            RequestError::Io(error) => write!(f, "i/o error: {error}"),
        }
    }
}

/// Reads one HTTP/1.1 request from `stream`, bounded by `deadline` for the
/// **whole** request — the socket's per-read timeout alone would reset on
/// every byte, letting a slow-drip client hold a resident worker
/// indefinitely. Bodies larger than `max_body_bytes` are rejected without
/// being read.
pub fn read_request(
    stream: &mut TcpStream,
    max_body_bytes: usize,
    deadline: std::time::Duration,
) -> Result<Request, RequestError> {
    let started = std::time::Instant::now();
    // One bounded read: caps each wait at the time left before the overall
    // deadline, and maps deadline exhaustion to a timeout error.
    let deadline_read = |stream: &mut TcpStream, chunk: &mut [u8]| -> Result<usize, RequestError> {
        let remaining = deadline.saturating_sub(started.elapsed());
        if remaining.is_zero() {
            return Err(RequestError::Io(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "request did not complete within the deadline",
            )));
        }
        // set_read_timeout rejects a zero Duration; `remaining` is non-zero.
        let _ = stream.set_read_timeout(Some(remaining));
        stream.read(chunk).map_err(RequestError::Io)
    };

    // Read until the blank line terminating the head.
    let mut buffer: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(position) = find_head_end(&buffer) {
            break position;
        }
        if buffer.len() > MAX_HEAD_BYTES {
            return Err(RequestError::BadRequest(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        let read = deadline_read(stream, &mut chunk)?;
        if read == 0 {
            return Err(RequestError::BadRequest(
                "connection closed mid-request".to_string(),
            ));
        }
        buffer.extend_from_slice(chunk.get(..read).unwrap_or(chunk.as_slice()));
    };

    let head = buffer
        .get(..head_end)
        .and_then(|head| std::str::from_utf8(head).ok())
        .ok_or_else(|| RequestError::BadRequest("request head is not utf-8".to_string()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(RequestError::BadRequest(format!(
                "malformed request line `{request_line}`"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::BadRequest(format!(
            "unsupported protocol `{version}`"
        )));
    }

    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| RequestError::BadRequest("bad content-length".to_string()))?;
        }
    }
    if content_length > max_body_bytes {
        return Err(RequestError::PayloadTooLarge(max_body_bytes));
    }

    // The body: whatever followed the head in the buffer, plus the rest.
    let body_start = head_end.saturating_add(4);
    let mut body = buffer.get(body_start..).unwrap_or_default().to_vec();
    while body.len() < content_length {
        let read = deadline_read(stream, &mut chunk)?;
        if read == 0 {
            return Err(RequestError::BadRequest(
                "connection closed mid-body".to_string(),
            ));
        }
        body.extend_from_slice(chunk.get(..read).unwrap_or(chunk.as_slice()));
    }
    body.truncate(content_length);
    let body = String::from_utf8(body)
        .map_err(|_| RequestError::BadRequest("request body is not utf-8".to_string()))?;

    let path = target.split('?').next().unwrap_or(target).to_string();
    Ok(Request {
        method: method.to_string(),
        path,
        body,
    })
}

fn find_head_end(buffer: &[u8]) -> Option<usize> {
    buffer.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The reason phrase of the status codes the API emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete HTTP/1.1 response with a JSON body and closes the
/// logical exchange (`Connection: close`). Write errors are returned for the
/// caller to log-and-drop; a client that hung up mid-response is its own
/// problem.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    use std::time::Duration;

    /// Round-trips raw bytes through a loopback socket into `read_request`.
    fn parse_raw(raw: &[u8]) -> Result<Request, RequestError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(&raw).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let request = read_request(&mut stream, 4096, Duration::from_secs(10));
        writer.join().unwrap();
        request
    }

    #[test]
    fn parses_get_and_post_requests() {
        let request = parse_raw(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(request.method, "GET");
        assert_eq!(request.path, "/healthz");
        assert_eq!(request.body, "");

        let request =
            parse_raw(b"POST /count?x=1 HTTP/1.1\r\nContent-Length: 7\r\nHost: x\r\n\r\n{\"a\":1}")
                .unwrap();
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/count");
        assert_eq!(request.body, "{\"a\":1}");
    }

    #[test]
    fn rejects_malformed_and_oversized_requests() {
        assert!(matches!(
            parse_raw(b"NOT-HTTP\r\n\r\n"),
            Err(RequestError::BadRequest(_))
        ));
        assert!(matches!(
            parse_raw(b"GET / SPDY/3\r\n\r\n"),
            Err(RequestError::BadRequest(_))
        ));
        assert!(matches!(
            parse_raw(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"),
            Err(RequestError::BadRequest(_))
        ));
        assert!(matches!(
            parse_raw(b"POST / HTTP/1.1\r\nContent-Length: 100000\r\n\r\n"),
            Err(RequestError::PayloadTooLarge(_))
        ));
        assert!(matches!(
            parse_raw(b"GET / HTTP/1.1\r\nHo"),
            Err(RequestError::BadRequest(_))
        ));
    }

    #[test]
    fn slow_drip_requests_hit_the_overall_deadline() {
        // A client that keeps trickling bytes resets any per-read timeout,
        // but must not outlive the per-request deadline.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            // Drip a byte every 50 ms, far more often than any read times
            // out, without ever finishing the head.
            for _ in 0..40 {
                if stream.write_all(b"G").is_err() {
                    return; // server gave up — exactly what we assert below
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        });
        let (mut stream, _) = listener.accept().unwrap();
        let started = std::time::Instant::now();
        let result = read_request(&mut stream, 4096, Duration::from_millis(300));
        assert!(
            matches!(result, Err(RequestError::Io(_))),
            "slow drip must time out, got {result:?}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "deadline did not bound the request"
        );
        drop(stream);
        writer.join().unwrap();
    }

    #[test]
    fn response_writer_emits_parseable_http() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            write_response(&mut stream, 200, &[("x-test", "yes")], "{\"ok\":true}").unwrap();
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        writer.join().unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("x-test: yes\r\n"));
        assert!(response.ends_with("\r\n\r\n{\"ok\":true}"));
    }
}
