//! Worker-side state for distributed shard counting.
//!
//! A worker boots from a single shard of a `MOCHYSHD` family: it reads the
//! manifest, then loads **only its primary shard's edge span** via
//! [`load_shard_slice`] — cold-start I/O proportional to one slice, not the
//! dataset. It then answers `POST /v1/internal/count-shard` for *any* shard
//! of the family (the coordinator reassigns shards of dead workers to
//! survivors, so every worker must be able to serve every shard).
//!
//! # Why the answer is bit-identical to unsharded MoCHy-E
//!
//! The shard partial itself is computed by
//! [`mochy_core::shard::count_shard_partial`], whose internal phase runs
//! plain MoCHy-E over the shard's edge slice and whose boundary phase walks
//! the **full** projected graph in its canonical order, attributing each
//! cross-shard instance to the shard owning its centre edge. Both phases add
//! exact `+1.0` contributions into `f64` accumulators, and real-world totals
//! sit far below 2^53, so addition is exact integer arithmetic — no grouping
//! of the work (by shard, by worker, by thread) can change a bit of the
//! merged counts. The first cross-shard request therefore lazily assembles
//! the full hypergraph from the family's slices (cached afterwards); the
//! assembled edge order is the manifest order, i.e. exactly the unsharded
//! snapshot's order.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

use mochy_core::shard::{count_shard_partial, ShardPartial};
use mochy_hypergraph::{
    load_shard_slice, load_sharded, manifest_stem, read_manifest_file, Hypergraph, ShardError,
    ShardManifest,
};
use mochy_projection::{project, project_parallel, ProjectedGraph};

/// The lazily-assembled full dataset a worker needs for boundary counting.
struct FullDataset {
    hypergraph: Hypergraph,
    projected: ProjectedGraph,
}

/// Everything a `--worker` instance knows about its shard family.
pub struct WorkerState {
    dataset: String,
    stem: PathBuf,
    manifest: ShardManifest,
    primary_shard: usize,
    full: Mutex<Option<Arc<FullDataset>>>,
}

impl std::fmt::Debug for WorkerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerState")
            .field("dataset", &self.dataset)
            .field("stem", &self.stem)
            .field("primary_shard", &self.primary_shard)
            .field("num_shards", &self.manifest.num_shards())
            .field("assembled", &self.is_assembled())
            .finish()
    }
}

impl WorkerState {
    /// Boots a worker for `dataset` from `manifest_path`, eagerly loading
    /// (and fully validating) only the `primary_shard` slice.
    ///
    /// The slice itself is not retained: counting always needs the full
    /// hypergraph for the boundary phase, so the load here is a cheap
    /// boot-time proof that this worker's shard file is present and intact
    /// before the coordinator is told the worker is healthy.
    pub fn boot(
        dataset: impl Into<String>,
        manifest_path: &Path,
        primary_shard: usize,
    ) -> Result<Self, ShardError> {
        let manifest = read_manifest_file(manifest_path)?;
        let stem = manifest_stem(manifest_path)?;
        // Validates checksum, edge span, and node universe of the one slice.
        let _slice = load_shard_slice(&stem, &manifest, primary_shard)?;
        Ok(Self {
            dataset: dataset.into(),
            stem,
            manifest,
            primary_shard,
            full: Mutex::new(None),
        })
    }

    /// The dataset name this worker serves.
    pub fn dataset(&self) -> &str {
        &self.dataset
    }

    /// The shard this worker booted from.
    pub fn primary_shard(&self) -> usize {
        self.primary_shard
    }

    /// The number of shards in the family.
    pub fn num_shards(&self) -> usize {
        self.manifest.num_shards()
    }

    /// The shard-family manifest.
    pub fn manifest(&self) -> &ShardManifest {
        &self.manifest
    }

    /// Whether the full hypergraph has been assembled yet.
    pub fn is_assembled(&self) -> bool {
        self.full
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some()
    }

    /// Computes the [`ShardPartial`] for `shard` with `threads` threads.
    ///
    /// The first call assembles the full hypergraph from the family's shard
    /// files and projects it; both are cached, so subsequent calls (for any
    /// shard) reuse them. Assembly runs outside the state lock; concurrent
    /// first requests may each build, but the first to publish wins and the
    /// rest adopt it, so every caller sees the same [`FullDataset`].
    pub fn count_shard(&self, shard: usize, threads: usize) -> Result<ShardPartial, String> {
        let full = self.assemble(threads)?;
        count_shard_partial(
            &full.hypergraph,
            &full.projected,
            self.manifest.num_shards(),
            shard,
            threads,
        )
        .ok_or_else(|| {
            format!(
                "shard {shard} out of range for a {}-shard family",
                self.manifest.num_shards()
            )
        })
    }

    /// The cached full dataset, if one has been published.
    fn cached(&self) -> Option<Arc<FullDataset>> {
        self.full
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .map(Arc::clone)
    }

    fn assemble(&self, threads: usize) -> Result<Arc<FullDataset>, String> {
        if let Some(full) = self.cached() {
            return Ok(full);
        }
        // Load and project with no lock held — this is seconds of IO and CPU
        // on a large family, and a held guard would stall health checks. If
        // two first requests race, both build, the first to publish wins and
        // the loser adopts the published copy.
        let sharded = load_sharded(&self.stem)
            .map_err(|error| format!("assembling shard family: {error}"))?;
        let hypergraph = sharded
            .assemble()
            .map_err(|error| format!("assembling shard family: {error}"))?;
        let projected = if threads > 1 {
            project_parallel(&hypergraph, threads)
        } else {
            project(&hypergraph)
        };
        let built = Arc::new(FullDataset {
            hypergraph,
            projected,
        });
        let mut slot = self.full.lock().unwrap_or_else(PoisonError::into_inner);
        let full = slot.get_or_insert_with(|| Arc::clone(&built));
        Ok(Arc::clone(full))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mochy_core::shard::{count_sharded, merge_partials};
    use mochy_core::{mochy_e, MotifCounts};
    use mochy_hypergraph::{write_shards, HypergraphBuilder};

    fn sample_hypergraph() -> Hypergraph {
        let mut builder = HypergraphBuilder::new();
        for e in 0u32..40 {
            let base = e % 11;
            builder.add_edge(vec![base, base + 1, (base * 3) % 13, (e / 4) % 7 + 2]);
        }
        builder.build().expect("sample hypergraph builds")
    }

    fn temp_stem(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mochy-worker-{tag}-{}", std::process::id()))
    }

    #[test]
    fn a_worker_counts_every_shard_bit_identically() {
        let h = sample_hypergraph();
        let stem = temp_stem("counts");
        write_shards(&h, &stem, 3).expect("write shards");

        let manifest_path = mochy_hypergraph::manifest_file_path(&stem);
        let state = WorkerState::boot("sample", &manifest_path, 1).expect("boot worker");
        assert_eq!(state.dataset(), "sample");
        assert_eq!(state.primary_shard(), 1);
        assert_eq!(state.num_shards(), 3);
        assert!(!state.is_assembled());

        // Reference: in-process sharded counting over the original graph.
        let projected = project(&h);
        let expected = count_sharded(&h, &projected, 3, 1);

        let mut partials = Vec::new();
        for shard in 0..3 {
            partials.push(state.count_shard(shard, 1).expect("count shard"));
        }
        assert!(state.is_assembled());
        for (ours, reference) in partials.iter().zip(expected.iter()) {
            assert_eq!(ours.to_json().render(), reference.to_json().render());
        }

        // And the merge equals plain MoCHy-E.
        let (merged, hyperwedges) = merge_partials(&partials);
        let direct: MotifCounts = mochy_e(&h, &projected);
        assert_eq!(merged.as_slice(), direct.as_slice());
        assert_eq!(hyperwedges, projected.num_hyperwedges());

        let _ = std::fs::remove_file(&manifest_path);
        for shard in 0..3 {
            let _ = std::fs::remove_file(mochy_hypergraph::shard_file_path(&stem, shard));
        }
    }

    #[test]
    fn out_of_range_shards_and_broken_families_are_errors() {
        let h = sample_hypergraph();
        let stem = temp_stem("errors");
        write_shards(&h, &stem, 2).expect("write shards");
        let manifest_path = mochy_hypergraph::manifest_file_path(&stem);

        assert!(WorkerState::boot("sample", &manifest_path, 9).is_err());

        let state = WorkerState::boot("sample", &manifest_path, 0).expect("boot worker");
        let error = state.count_shard(7, 1).expect_err("out of range");
        assert!(error.contains("out of range"), "{error}");

        // Deleting a sibling slice breaks lazy assembly with a typed message.
        let fresh = WorkerState::boot("sample", &manifest_path, 0).expect("boot worker");
        let _ = std::fs::remove_file(mochy_hypergraph::shard_file_path(&stem, 1));
        let error = fresh.count_shard(0, 1).expect_err("missing sibling slice");
        assert!(error.contains("assembling shard family"), "{error}");

        let _ = std::fs::remove_file(&manifest_path);
        let _ = std::fs::remove_file(mochy_hypergraph::shard_file_path(&stem, 0));
    }
}
