//! A minimal keep-alive HTTP/1.1 client — the coordinator's side of the
//! wire protocol [`crate::http`] serves.
//!
//! Like the server half, this exists because the sandbox is offline and the
//! workspace vendors no HTTP stack. It speaks exactly the subset the serve
//! layer emits: one `Content-Length`-framed JSON response per request over a
//! persistent connection. Every request is bounded by a **whole-exchange
//! deadline** (connect + write + read), so a stalled peer turns into
//! [`ClientError::DeadlineExceeded`] rather than a wedged caller — the
//! property the coordinator's retry/reassignment logic is built on.
//!
//! A [`HttpClient`] keeps its connection open across requests. When a
//! reused connection turns out to be stale (the server closed it between
//! requests — request cap reached or idle deadline expired), the request is
//! transparently retried once on a fresh connection; deadline expiry is
//! never retried, so a stalled worker costs one deadline, not two.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Upper bound on a response head (status line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a response body this client is willing to buffer.
const MAX_RESPONSE_BODY_BYTES: usize = 16 << 20;

/// A parsed HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// The status code of the status line.
    pub status: u16,
    /// Response headers, names lowercased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: String,
}

impl ClientResponse {
    /// The value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(key, _)| key.eq_ignore_ascii_case(name))
            .map(|(_, value)| value.as_str())
    }
}

/// Why a request failed.
#[derive(Debug)]
pub enum ClientError {
    /// No connection could be established within the deadline.
    Connect(String),
    /// The connection failed mid-exchange.
    Io(String),
    /// The peer closed the connection before a response arrived.
    Closed,
    /// The bytes on the wire are not a well-formed HTTP/1.1 response.
    BadResponse(String),
    /// The whole exchange did not complete within the caller's deadline.
    DeadlineExceeded,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Connect(why) => write!(f, "connect failed: {why}"),
            ClientError::Io(why) => write!(f, "i/o error: {why}"),
            ClientError::Closed => write!(f, "connection closed before a response"),
            ClientError::BadResponse(why) => write!(f, "bad response: {why}"),
            ClientError::DeadlineExceeded => write!(f, "request deadline exceeded"),
        }
    }
}

/// A keep-alive HTTP/1.1 client bound to one server address.
#[derive(Debug)]
pub struct HttpClient {
    addr: String,
    stream: Option<TcpStream>,
}

impl HttpClient {
    /// A client for `addr` (`host:port`). No connection is made until the
    /// first request.
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            stream: None,
        }
    }

    /// The address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Issues one request and reads its response, all within `deadline`.
    ///
    /// The connection is kept open afterwards unless the server answered
    /// `connection: close`. A stale kept-alive connection (EOF or I/O error
    /// before any response byte) is retried once on a fresh connection
    /// within the same deadline; [`ClientError::DeadlineExceeded`] is never
    /// retried.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        deadline: Duration,
    ) -> Result<ClientResponse, ClientError> {
        let started = Instant::now();
        let reused = self.stream.is_some();
        match self.try_request(method, path, body, started, deadline) {
            Ok(response) => Ok(response),
            Err(error) => {
                self.stream = None;
                let retryable = matches!(error, ClientError::Io(_) | ClientError::Closed);
                if reused && retryable {
                    let retried = self.try_request(method, path, body, started, deadline);
                    if retried.is_err() {
                        self.stream = None;
                    }
                    retried
                } else {
                    Err(error)
                }
            }
        }
    }

    /// Convenience: `GET path` with an empty body.
    pub fn get(&mut self, path: &str, deadline: Duration) -> Result<ClientResponse, ClientError> {
        self.request("GET", path, "", deadline)
    }

    /// Convenience: `POST path` with a JSON body.
    pub fn post(
        &mut self,
        path: &str,
        body: &str,
        deadline: Duration,
    ) -> Result<ClientResponse, ClientError> {
        self.request("POST", path, body, deadline)
    }

    /// One `read` bounded by the time left before the deadline, appended to
    /// `buffer`; returns how many bytes arrived (0 = orderly EOF).
    fn deadline_read(
        stream: &mut TcpStream,
        buffer: &mut Vec<u8>,
        started: Instant,
        deadline: Duration,
    ) -> Result<usize, ClientError> {
        let remaining = Self::remaining(started, deadline)?;
        let _ = stream.set_read_timeout(Some(remaining));
        let mut chunk = [0u8; 4096];
        let read = stream.read(&mut chunk).map_err(map_io)?;
        buffer.extend_from_slice(chunk.get(..read).unwrap_or(&[]));
        Ok(read)
    }

    fn remaining(started: Instant, deadline: Duration) -> Result<Duration, ClientError> {
        let remaining = deadline.saturating_sub(started.elapsed());
        if remaining.is_zero() {
            Err(ClientError::DeadlineExceeded)
        } else {
            Ok(remaining)
        }
    }

    fn try_request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
        started: Instant,
        deadline: Duration,
    ) -> Result<ClientResponse, ClientError> {
        if self.stream.is_none() {
            let remaining = Self::remaining(started, deadline)?;
            let resolved = self
                .addr
                .to_socket_addrs()
                .map_err(|error| ClientError::Connect(error.to_string()))?
                .next()
                .ok_or_else(|| {
                    ClientError::Connect(format!("`{}` resolves to no address", self.addr))
                })?;
            let stream = TcpStream::connect_timeout(&resolved, remaining)
                .map_err(|error| ClientError::Connect(error.to_string()))?;
            let _ = stream.set_nodelay(true);
            self.stream = Some(stream);
        }
        let stream = self.stream.as_mut().ok_or(ClientError::Closed)?;

        // Write the request, bounded by the remaining deadline.
        let remaining = Self::remaining(started, deadline)?;
        let _ = stream.set_write_timeout(Some(remaining));
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-type: application/json\r\n\
             content-length: {}\r\nconnection: keep-alive\r\n\r\n",
            self.addr,
            body.len()
        );
        let write = stream
            .write_all(head.as_bytes())
            .and_then(|()| stream.write_all(body.as_bytes()))
            .and_then(|()| stream.flush());
        write.map_err(map_io)?;

        let mut buffer: Vec<u8> = Vec::with_capacity(1024);

        // Head: read until the blank line.
        let head_end = loop {
            if let Some(position) = buffer.windows(4).position(|w| w == b"\r\n\r\n") {
                break position;
            }
            if buffer.len() > MAX_HEAD_BYTES {
                return Err(ClientError::BadResponse(format!(
                    "response head exceeds {MAX_HEAD_BYTES} bytes"
                )));
            }
            let read = Self::deadline_read(stream, &mut buffer, started, deadline)?;
            if read == 0 {
                return if buffer.is_empty() {
                    Err(ClientError::Closed)
                } else {
                    Err(ClientError::BadResponse(
                        "connection closed mid-head".to_string(),
                    ))
                };
            }
        };

        let (status, headers, content_length, close) = {
            let head = buffer
                .get(..head_end)
                .and_then(|head| std::str::from_utf8(head).ok())
                .ok_or_else(|| {
                    ClientError::BadResponse("response head is not utf-8".to_string())
                })?;
            let mut lines = head.split("\r\n");
            let status_line = lines.next().unwrap_or_default();
            let mut parts = status_line.splitn(3, ' ');
            let (version, status) = match (parts.next(), parts.next()) {
                (Some(version), Some(code)) => (version, code),
                _ => {
                    return Err(ClientError::BadResponse(format!(
                        "malformed status line `{status_line}`"
                    )))
                }
            };
            if !version.starts_with("HTTP/1.") {
                return Err(ClientError::BadResponse(format!(
                    "unsupported protocol `{version}`"
                )));
            }
            let status: u16 = status.parse().map_err(|_| {
                ClientError::BadResponse(format!("non-numeric status in `{status_line}`"))
            })?;

            let mut headers: Vec<(String, String)> = Vec::new();
            let mut content_length = 0usize;
            let mut close = false;
            for line in lines {
                let Some((name, value)) = line.split_once(':') else {
                    continue;
                };
                let name = name.trim().to_ascii_lowercase();
                let value = value.trim().to_string();
                if name == "content-length" {
                    content_length = value
                        .parse()
                        .map_err(|_| ClientError::BadResponse("bad content-length".to_string()))?;
                } else if name == "connection" && value.eq_ignore_ascii_case("close") {
                    close = true;
                }
                headers.push((name, value));
            }
            (status, headers, content_length, close)
        };
        if content_length > MAX_RESPONSE_BODY_BYTES {
            return Err(ClientError::BadResponse(format!(
                "response body of {content_length} bytes exceeds the {MAX_RESPONSE_BODY_BYTES}\
                 -byte client limit"
            )));
        }

        // Body: whatever followed the head, plus the rest off the socket.
        let body_start = head_end.saturating_add(4);
        let body_end = body_start.saturating_add(content_length);
        while buffer.len() < body_end {
            let read = Self::deadline_read(stream, &mut buffer, started, deadline)?;
            if read == 0 {
                return Err(ClientError::BadResponse(
                    "connection closed mid-body".to_string(),
                ));
            }
        }
        let body = String::from_utf8(
            buffer
                .get(body_start..body_end)
                .unwrap_or_default()
                .to_vec(),
        )
        .map_err(|_| ClientError::BadResponse("response body is not utf-8".to_string()))?;

        // Strictly one response per request: surplus bytes mean the framing
        // drifted, so resynchronize by dropping the connection.
        if close || buffer.len() > body_end {
            self.stream = None;
        }
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}

fn map_io(error: std::io::Error) -> ClientError {
    match error.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            ClientError::DeadlineExceeded
        }
        _ => ClientError::Io(error.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    const DEADLINE: Duration = Duration::from_secs(5);

    /// Serves `responses` verbatim, one per request read, on one connection.
    fn canned_server(
        responses: Vec<String>,
    ) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            for response in responses {
                // Read until the end of the request head (requests here have
                // empty or small bodies; the blank line is enough to sync).
                let mut seen = Vec::new();
                let mut chunk = [0u8; 1024];
                loop {
                    let read = stream.read(&mut chunk).unwrap();
                    if read == 0 {
                        return;
                    }
                    seen.extend_from_slice(&chunk[..read]);
                    if seen.windows(4).any(|w| w == b"\r\n\r\n") {
                        break;
                    }
                }
                stream.write_all(response.as_bytes()).unwrap();
            }
        });
        (addr, handle)
    }

    fn framed(status: u16, headers: &str, body: &str) -> String {
        format!(
            "HTTP/1.1 {status} X\r\ncontent-length: {}\r\n{headers}\r\n{body}",
            body.len()
        )
    }

    #[test]
    fn requests_parse_status_headers_and_body_over_keep_alive() {
        let (addr, server) = canned_server(vec![
            framed(200, "x-mochy-cache: miss\r\n", "{\"a\":1}"),
            framed(404, "", "{\"error\":{}}"),
        ]);
        let mut client = HttpClient::new(addr.to_string());
        let first = client.get("/v1/healthz", DEADLINE).unwrap();
        assert_eq!(first.status, 200);
        assert_eq!(first.body, "{\"a\":1}");
        assert_eq!(first.header("x-mochy-cache"), Some("miss"));
        assert_eq!(first.header("X-Mochy-Cache"), Some("miss"));
        // Second exchange rides the same connection.
        let second = client.post("/v1/count", "{}", DEADLINE).unwrap();
        assert_eq!(second.status, 404);
        assert_eq!(second.body, "{\"error\":{}}");
        server.join().unwrap();
    }

    #[test]
    fn stalled_servers_hit_the_deadline_not_a_hang() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            // Accept, read the request, answer nothing for a while.
            let (mut stream, _) = listener.accept().unwrap();
            let mut chunk = [0u8; 1024];
            let _ = stream.read(&mut chunk);
            std::thread::sleep(Duration::from_millis(700));
        });
        let mut client = HttpClient::new(addr.to_string());
        let started = Instant::now();
        let result = client.get("/v1/healthz", Duration::from_millis(150));
        assert!(
            matches!(result, Err(ClientError::DeadlineExceeded)),
            "{result:?}"
        );
        assert!(started.elapsed() < Duration::from_millis(600));
        server.join().unwrap();
    }

    #[test]
    fn stale_keep_alive_connections_are_retried_once() {
        // First connection serves one response then closes; the second
        // request must transparently land on a fresh connection.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            for body in ["first", "second"] {
                let (mut stream, _) = listener.accept().unwrap();
                let mut chunk = [0u8; 1024];
                let _ = stream.read(&mut chunk).unwrap();
                stream.write_all(framed(200, "", body).as_bytes()).unwrap();
                // Dropping the stream closes the connection after one
                // exchange, leaving the client's keep-alive handle stale.
            }
        });
        let mut client = HttpClient::new(addr.to_string());
        assert_eq!(client.get("/a", DEADLINE).unwrap().body, "first");
        assert_eq!(client.get("/b", DEADLINE).unwrap().body, "second");
        server.join().unwrap();
    }

    #[test]
    fn malformed_responses_are_typed_errors() {
        let (addr, server) = canned_server(vec![
            "HTTP/1.1 two-hundred OK\r\ncontent-length: 0\r\n\r\n".to_string(),
        ]);
        let mut client = HttpClient::new(addr.to_string());
        let result = client.get("/", DEADLINE);
        assert!(
            matches!(result, Err(ClientError::BadResponse(_))),
            "{result:?}"
        );
        server.join().unwrap();
    }
}
