//! Named datasets as shared, immutable snapshots with serialized mutation.
//!
//! Concurrency model (the heart of the serve layer):
//!
//! - Every dataset publishes its current state as an `Arc<Snapshot>`.
//!   Readers call [`Dataset::snapshot`], which holds the publication lock
//!   only long enough to clone the `Arc` — nanoseconds — and then run their
//!   whole query (projection, counting, profile estimation) against that
//!   immutable snapshot without any further synchronization. A query never
//!   observes a half-applied mutation.
//! - Mutations serialize through a per-dataset writer: a
//!   [`StreamingEngine`] (bootstrapped lazily from the current snapshot on
//!   the first mutation) applies the hyperedge insertions and removals
//!   incrementally, then a **fresh** snapshot is materialized and published
//!   by swapping the shared pointer. In-flight readers keep the snapshot
//!   they started with; new readers see the new one.
//! - Edge identifiers follow the [`DynamicHypergraph`] contract
//!   (monotone, never reused): removing a tombstoned or never-issued id is a
//!   strict no-op reported as `false`, never an error and never a panic —
//!   the API surfaces client-supplied ids directly, so this must be
//!   airtight.
//!
//! [`DynamicHypergraph`]: mochy_hypergraph::DynamicHypergraph

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError, RwLock};

use mochy_core::streaming::{StreamConfig, StreamingEngine};
use mochy_hypergraph::{EdgeId, Hypergraph, NodeId};

/// Largest node identifier a mutation may introduce. The incidence index is
/// dense in the node id (one slot per id up to the maximum ever seen), so an
/// unbounded client-supplied id would translate into an unbounded
/// allocation; 2^24 − 1 comfortably covers the paper's largest dataset
/// (threads-stackoverflow, 2.6 M nodes) while capping the index at a few
/// hundred megabytes even in the worst case.
pub const MAX_NODE_ID: NodeId = (1 << 24) - 1;

/// An immutable, shareable state of one dataset.
#[derive(Debug)]
pub struct Snapshot {
    /// Publication number: 0 for the initial load, +1 per mutation batch.
    pub generation: u64,
    /// The hypergraph, or `None` when every hyperedge has been removed
    /// (hyperedge sets are non-empty by construction, so the empty state
    /// needs an explicit representation).
    pub hypergraph: Option<Arc<Hypergraph>>,
}

impl Snapshot {
    /// Number of nodes (0 for the empty snapshot).
    pub fn num_nodes(&self) -> usize {
        self.hypergraph.as_ref().map_or(0, |h| h.num_nodes())
    }

    /// Number of hyperedges (0 for the empty snapshot).
    pub fn num_edges(&self) -> usize {
        self.hypergraph.as_ref().map_or(0, |h| h.num_edges())
    }
}

/// The outcome of one mutation batch, reported back to the client.
#[derive(Debug, Clone, PartialEq)]
pub struct MutationOutcome {
    /// Generation of the snapshot the batch published.
    pub generation: u64,
    /// The fresh identifier of every inserted hyperedge, in request order.
    pub inserted: Vec<EdgeId>,
    /// Per requested removal: whether it removed a live hyperedge (`false`
    /// for tombstoned or never-issued ids — a strict no-op).
    pub removed: Vec<bool>,
    /// Live hyperedges after the batch.
    pub num_edges: usize,
    /// Exact total h-motif instance count after the batch, maintained
    /// incrementally by the streaming writer.
    pub total_instances: f64,
}

/// Why a mutation batch was not applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutateError {
    /// The batch itself is malformed — a client error (HTTP 400).
    Invalid(String),
    /// The streaming writer was poisoned by a panic mid-batch. Unlike the
    /// publication lock (which only guards an atomic pointer swap), the
    /// writer's incremental counts can genuinely be torn by a panic, so
    /// this is a server error (HTTP 500); recovery is re-ingesting the
    /// dataset.
    WriterPoisoned,
}

impl std::fmt::Display for MutateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MutateError::Invalid(why) => write!(f, "{why}"),
            MutateError::WriterPoisoned => write!(
                f,
                "the dataset's writer was poisoned by an earlier panic; re-ingest the dataset"
            ),
        }
    }
}

/// One named dataset: a published snapshot plus a serialized writer.
#[derive(Debug)]
pub struct Dataset {
    published: Mutex<Arc<Snapshot>>,
    /// The streaming writer; `None` until the first mutation.
    writer: Mutex<Option<StreamingEngine>>,
}

impl Dataset {
    fn new(hypergraph: Hypergraph) -> Self {
        Self {
            published: Mutex::new(Arc::new(Snapshot {
                generation: 0,
                hypergraph: Some(Arc::new(hypergraph)),
            })),
            writer: Mutex::new(None),
        }
    }

    /// The currently published snapshot. The internal lock is held only for
    /// the pointer clone; the returned snapshot is immutable and can be read
    /// for any length of time without blocking writers or other readers.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        // A poisoned publication lock is recoverable: the guarded value is a
        // plain `Arc` swapped in one assignment, so a panic elsewhere can
        // never leave it torn — readers must keep being served.
        Arc::clone(
            &self
                .published
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }

    /// Applies a mutation batch — `inserts` then `removes` — and publishes a
    /// fresh snapshot. Mutations serialize on the writer lock; concurrent
    /// readers are never blocked and keep whichever snapshot they already
    /// hold.
    ///
    /// # Errors
    /// Rejects empty member lists and node ids above [`MAX_NODE_ID`]
    /// *before* touching the writer, so a bad batch mutates nothing.
    pub fn mutate(
        &self,
        inserts: &[Vec<NodeId>],
        removes: &[EdgeId],
    ) -> Result<MutationOutcome, MutateError> {
        for (position, members) in inserts.iter().enumerate() {
            if members.is_empty() {
                return Err(MutateError::Invalid(format!(
                    "insert[{position}] is empty; hyperedges are non-empty node sets"
                )));
            }
            if let Some(&node) = members.iter().find(|&&v| v > MAX_NODE_ID) {
                return Err(MutateError::Invalid(format!(
                    "insert[{position}] names node {node}, above the maximum node id \
                     {MAX_NODE_ID}"
                )));
            }
        }

        let mut writer = self
            .writer
            .lock()
            .map_err(|_| MutateError::WriterPoisoned)?;
        if writer.is_none() {
            // First mutation: bootstrap the streaming engine from the
            // published snapshot (edge e keeps identifier e). The bootstrap
            // runs a full projection + motif count, so it must happen with
            // the writer lock *released* — otherwise every concurrent
            // mutation (and any future caller that takes the writer lock)
            // stalls behind one dataset-sized count. Releasing is safe:
            // snapshots only advance under the writer lock, so the published
            // snapshot we bootstrap from cannot change while no writer
            // exists; if two mutations race the bootstrap, the recheck below
            // keeps the first engine and discards the duplicate.
            drop(writer);
            let bootstrapped = match self.snapshot().hypergraph.as_deref() {
                Some(hypergraph) => {
                    StreamingEngine::from_hypergraph(hypergraph, StreamConfig::default())
                }
                None => StreamingEngine::new(StreamConfig::default()),
            };
            writer = self
                .writer
                .lock()
                .map_err(|_| MutateError::WriterPoisoned)?;
            if writer.is_none() {
                *writer = Some(bootstrapped);
            }
        }
        let stream = match writer.as_mut() {
            Some(stream) => stream,
            // Unreachable — the branch above guarantees `Some` — but a typed
            // error keeps this path panic-free instead of unwrapping.
            None => return Err(MutateError::WriterPoisoned),
        };

        let inserted: Vec<EdgeId> = inserts
            .iter()
            .map(|members| stream.insert(members.iter().copied()))
            .collect();
        let removed: Vec<bool> = removes.iter().map(|&e| stream.remove(e)).collect();

        // Publish: materialize the surviving hyperedges as an immutable
        // snapshot and swap the shared pointer.
        let hypergraph = stream.to_hypergraph().ok().map(Arc::new);
        let num_edges = stream.num_live_edges();
        let total_instances = stream.counts().total();
        let mut published = self
            .published
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let generation = published.generation + 1;
        *published = Arc::new(Snapshot {
            generation,
            hypergraph,
        });
        Ok(MutationOutcome {
            generation,
            inserted,
            removed,
            num_edges,
            total_instances,
        })
    }
}

/// The set of datasets a server instance exposes.
///
/// Seeded at startup and extensible at runtime: `POST /datasets` ingests an
/// uploaded snapshot into a fresh entry, so the map lives behind a
/// [`RwLock`]. Readers (`/count`, `/profile`, the listing) take the read
/// lock only long enough to clone one `Arc`; ingestion takes the write lock
/// for a map insert. Per-dataset state never needs the registry lock —
/// mutation and snapshot publication are handled inside [`Dataset`].
#[derive(Debug, Default)]
pub struct Registry {
    datasets: RwLock<BTreeMap<String, Arc<Dataset>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `hypergraph` under `name` (replacing any previous dataset
    /// of that name) — the boot-time seeding path.
    pub fn insert(&self, name: impl Into<String>, hypergraph: Hypergraph) {
        // Registry lock poisoning is recoverable everywhere below: the map
        // operations under it (`BTreeMap` insert/get/iterate over `String`
        // keys and `Arc` values) have no panic path that could tear the map,
        // and refusing service registry-wide over one dead worker would turn
        // a single burned request into a full outage.
        self.datasets
            .write()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(name.into(), Arc::new(Dataset::new(hypergraph)));
    }

    /// Registers `hypergraph` under `name` as a **fresh** entry — the
    /// runtime ingestion path. Fails (without touching the map) if the name
    /// is taken: replacing a live dataset under concurrent readers is a
    /// deliberate operator action, not something an upload does implicitly.
    pub fn insert_new(
        &self,
        name: impl Into<String>,
        hypergraph: Hypergraph,
    ) -> Result<Arc<Dataset>, String> {
        let name = name.into();
        let mut datasets = self
            .datasets
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        if datasets.contains_key(&name) {
            return Err(format!("dataset `{name}` already exists"));
        }
        let dataset = Arc::new(Dataset::new(hypergraph));
        datasets.insert(name, Arc::clone(&dataset));
        Ok(dataset)
    }

    /// The dataset registered under `name`.
    pub fn get(&self, name: &str) -> Option<Arc<Dataset>> {
        self.datasets
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .cloned()
    }

    /// Number of registered datasets.
    pub fn len(&self) -> usize {
        self.datasets
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.datasets
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .is_empty()
    }

    /// A point-in-time snapshot of `(name, dataset)` pairs in name order
    /// (the order the listing endpoint reports).
    pub fn entries(&self) -> Vec<(String, Arc<Dataset>)> {
        self.datasets
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, dataset)| (name.clone(), Arc::clone(dataset)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mochy_core::engine::CountConfig;
    use mochy_hypergraph::HypergraphBuilder;

    fn figure2() -> Hypergraph {
        HypergraphBuilder::new()
            .with_edge([0u32, 1, 2])
            .with_edge([0, 3, 1])
            .with_edge([4, 5, 0])
            .with_edge([6, 7, 2])
            .build()
            .unwrap()
    }

    #[test]
    fn snapshots_are_immutable_across_mutations() {
        let dataset = Dataset::new(figure2());
        let before = dataset.snapshot();
        assert_eq!(before.generation, 0);
        assert_eq!(before.num_edges(), 4);

        let outcome = dataset
            .mutate(&[vec![1, 4, 6]], &[3])
            .expect("valid mutation");
        assert_eq!(outcome.generation, 1);
        assert_eq!(outcome.inserted, vec![4]);
        assert_eq!(outcome.removed, vec![true]);
        assert_eq!(outcome.num_edges, 4);

        // The old snapshot still sees the pre-mutation hypergraph.
        assert_eq!(before.num_edges(), 4);
        let old_counts = CountConfig::exact()
            .build()
            .count(before.hypergraph.as_deref().unwrap());
        assert_eq!(old_counts.counts.total(), 3.0);

        let after = dataset.snapshot();
        assert_eq!(after.generation, 1);
        assert_eq!(after.num_edges(), 4);
        // The published snapshot's exact counts match the incremental total.
        let new_counts = CountConfig::exact()
            .build()
            .count(after.hypergraph.as_deref().unwrap());
        assert_eq!(new_counts.counts.total(), outcome.total_instances);
    }

    #[test]
    fn double_and_unknown_removes_are_reported_false() {
        let dataset = Dataset::new(figure2());
        let outcome = dataset.mutate(&[], &[3, 3, 99]).unwrap();
        assert_eq!(outcome.removed, vec![true, false, false]);
        assert_eq!(outcome.num_edges, 3);
        // A second batch re-removing the same id is still a no-op and does
        // not disturb the counts.
        let again = dataset.mutate(&[], &[3]).unwrap();
        assert_eq!(again.removed, vec![false]);
        assert_eq!(again.total_instances, outcome.total_instances);
        assert_eq!(again.generation, 2);
    }

    #[test]
    fn bad_batches_mutate_nothing() {
        let dataset = Dataset::new(figure2());
        let error = dataset
            .mutate(&[vec![0, 1], vec![]], &[0])
            .unwrap_err()
            .to_string();
        assert!(error.contains("insert[1]"), "{error}");
        // Node ids above the cap are rejected up front — the incidence index
        // is dense in the node id, so admitting them would be an unbounded
        // allocation.
        let error = dataset
            .mutate(&[vec![0, 1], vec![2, MAX_NODE_ID + 1]], &[0])
            .unwrap_err();
        assert!(matches!(error, MutateError::Invalid(_)), "{error:?}");
        assert!(error.to_string().contains("maximum node id"), "{error}");
        let snapshot = dataset.snapshot();
        assert_eq!(snapshot.generation, 0);
        assert_eq!(snapshot.num_edges(), 4);
    }

    #[test]
    fn emptied_datasets_publish_an_empty_snapshot_and_recover() {
        let dataset = Dataset::new(
            HypergraphBuilder::new()
                .with_edge([0u32, 1])
                .build()
                .unwrap(),
        );
        let outcome = dataset.mutate(&[], &[0]).unwrap();
        assert_eq!(outcome.num_edges, 0);
        assert_eq!(outcome.total_instances, 0.0);
        let empty = dataset.snapshot();
        assert!(empty.hypergraph.is_none());
        assert_eq!(empty.num_nodes(), 0);
        // Inserting again revives the dataset.
        let outcome = dataset.mutate(&[vec![2, 3]], &[]).unwrap();
        assert_eq!(outcome.num_edges, 1);
        assert_eq!(dataset.snapshot().num_edges(), 1);
    }

    #[test]
    fn registry_lists_in_name_order() {
        let registry = Registry::new();
        registry.insert("zeta", figure2());
        registry.insert("alpha", figure2());
        let names: Vec<String> = registry
            .entries()
            .into_iter()
            .map(|(name, _)| name)
            .collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
        assert_eq!(registry.len(), 2);
        assert!(registry.get("alpha").is_some());
        assert!(registry.get("missing").is_none());
    }

    #[test]
    fn insert_new_rejects_existing_names_without_clobbering() {
        let registry = Registry::new();
        registry.insert("fig2", figure2());
        let before = registry.get("fig2").unwrap().snapshot();
        let error = registry.insert_new("fig2", figure2()).unwrap_err();
        assert!(error.contains("already exists"), "{error}");
        // The original dataset (and its published snapshot) is untouched.
        assert!(Arc::ptr_eq(
            &before.hypergraph.clone().unwrap(),
            &registry
                .get("fig2")
                .unwrap()
                .snapshot()
                .hypergraph
                .clone()
                .unwrap()
        ));
        // A fresh name is accepted and immediately visible.
        registry.insert_new("fig2-b", figure2()).unwrap();
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.get("fig2-b").unwrap().snapshot().generation, 0);
    }
}
