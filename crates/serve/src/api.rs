//! The JSON API of `mochy-serve`: versioned routing, request parsing, query
//! execution, response rendering, and the byte-identical LRU result cache.
//!
//! Routes are versioned under `/v1` (the only version). The historical
//! unversioned paths remain as **deprecated aliases**: they answer exactly
//! like their `/v1` spelling plus a `deprecation: true` response header, so
//! existing clients keep working while new ones can detect the old spelling.
//! A request under an unknown version prefix (`/v2/...`) is a structured
//! 404 (`kind: "unknown-version"`), distinct from a plain unknown path.
//!
//! | Route | Body | Answer |
//! |---|---|---|
//! | `GET /v1/healthz` | — | liveness, role, dataset/cache/pool stats |
//! | `GET /v1/datasets` | — | registered datasets with generation + sizes |
//! | `POST /v1/datasets` | `{"name", "snapshot"}` | ingests a base64 `.mochy` snapshot as a fresh dataset |
//! | `POST /v1/count` | `{"dataset", "method", …}` | 26 h-motif counts via the [`MotifEngine`] |
//! | `POST /v1/profile` | `{"dataset", "randomizations", …}` | characteristic profile (Eqs. 1–2) |
//! | `POST /v1/mutate` | `{"dataset", "insert", "remove"}` | applies churn, publishes a new snapshot |
//! | `POST /v1/admin/shutdown` | — | acknowledges, then stops the accept loop |
//! | `POST /v1/internal/count-shard` | `{"dataset", "shard", "threads"}` | one [`ShardPartial`], worker role only (`/v1`-only, no alias) |
//!
//! (`POST /shutdown` aliases `/v1/admin/shutdown`; the other aliases drop
//! the `/v1` prefix.)
//!
//! **Errors.** Every error response carries one uniform envelope,
//! `{"error": {"code", "kind", "message", "detail"?}}`, built through a
//! single typed [`ApiError`] constructor — including transport-level errors
//! (the accept loop's 503, the request reader's 400/408/413) via
//! [`error_body`]. Fan-out partial failures list per-worker outcomes under
//! `detail`.
//!
//! **Determinism and caching.** Every `/count` and `/profile` body is a pure
//! function of `(dataset snapshot, normalized query)`: the engine is
//! seed-deterministic and timings are deliberately excluded from response
//! bodies. Responses are memoized in a [`QueryCache`] keyed by
//! `(dataset, generation, normalized query)`; a hit therefore returns the
//! *exact bytes* the uncached computation produced (the `x-mochy-cache:
//! hit|miss` response header is the only difference). Mutations bump the
//! dataset generation, so stale entries are never served — they simply age
//! out of the LRU.
//!
//! [`MotifEngine`]: mochy_core::engine::MotifEngine
//! [`ShardPartial`]: mochy_core::shard::ShardPartial

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use mochy_analysis::profile::{CountingMethod, ProfileEstimator};
use mochy_core::engine::{CountConfig, CountReport, Method};
use mochy_core::shard::merge_partials;
use mochy_core::AdaptiveConfig;
use mochy_hypergraph::{EdgeId, NodeId};
use mochy_json::{self as json, JsonValue};
use mochy_motif::NUM_MOTIFS;
use mochy_projection::MemoPolicy;

use crate::b64;
use crate::coordinator::{Coordinator, FanoutError};
use crate::http::Request;
use crate::registry::{MutateError, Registry, Snapshot, MAX_NODE_ID};
use crate::worker::WorkerState;

/// Hard ceiling on per-request sample counts (keeps a single query bounded).
const MAX_SAMPLES: usize = 1_000_000;
/// Hard ceiling on the per-request `shards` parameter of exact counting
/// (each shard carries its own projection, so the parameter is cost-bearing).
const MAX_SHARDS: usize = 64;
/// Hard ceiling on per-request null-model randomizations.
const MAX_RANDOMIZATIONS: usize = 16;
/// Longest accepted dataset name on the ingestion route.
const MAX_DATASET_NAME: usize = 100;

/// An LRU cache of rendered response bodies.
///
/// Values are `Arc<str>` so a hit hands back the identical allocation; the
/// eviction order is least-recently-*used* (a hit refreshes the entry).
#[derive(Debug)]
pub struct QueryCache {
    capacity: usize,
    /// Back of the vector = most recently used.
    entries: Mutex<Vec<(String, Arc<str>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl QueryCache {
    /// A cache holding at most `capacity` rendered bodies (0 disables
    /// caching entirely).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks `key` up, refreshing its recency. Counts a hit or miss.
    pub fn get(&self, key: &str) -> Option<Arc<str>> {
        // Cache lock poisoning is recoverable at every use: the guarded
        // vector only ever holds complete `(key, Arc<str>)` pairs (the
        // mutations below are remove/push, which never leave a torn entry
        // visible), and a degraded cache must not take down reads.
        let mut entries = self
            .entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(position) = entries.iter().position(|(k, _)| k == key) {
            let entry = entries.remove(position);
            let value = Arc::clone(&entry.1);
            entries.push(entry);
            self.hits.fetch_add(1, Ordering::Relaxed);
            Some(value)
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Stores `body` under `key`, evicting the least recently used entry
    /// when full. Re-inserting an existing key refreshes it.
    pub fn put(&self, key: String, body: Arc<str>) {
        if self.capacity == 0 {
            return;
        }
        let mut entries = self
            .entries
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(position) = entries.iter().position(|(k, _)| *k == key) {
            entries.remove(position);
        } else if entries.len() >= self.capacity {
            entries.remove(0);
        }
        entries.push((key, body));
    }

    /// `(hits, misses, current entry count)`.
    pub fn stats(&self) -> (u64, u64, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.entries
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .len(),
        )
    }
}

/// Whether a response was served from the result cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheState {
    /// Body returned straight from the cache.
    Hit,
    /// Body computed by this request (and now cached).
    Miss,
}

impl CacheState {
    /// Header value for `x-mochy-cache`.
    pub fn as_str(self) -> &'static str {
        match self {
            CacheState::Hit => "hit",
            CacheState::Miss => "miss",
        }
    }
}

/// A routed API response.
#[derive(Debug)]
pub struct ApiResponse {
    /// HTTP status code.
    pub status: u16,
    /// Rendered JSON body.
    pub body: Arc<str>,
    /// Cache disposition of cacheable routes.
    pub cache_state: Option<CacheState>,
    /// Whether the server should stop accepting after this response.
    pub shutdown: bool,
    /// Whether the request used a deprecated unversioned path alias (the
    /// transport answers with a `deprecation: true` header).
    pub deprecated: bool,
}

impl ApiResponse {
    fn ok(body: impl Into<Arc<str>>) -> Self {
        Self {
            status: 200,
            body: body.into(),
            cache_state: None,
            shutdown: false,
            deprecated: false,
        }
    }
}

/// A request rejected before (or during) execution: the single constructor
/// of the uniform error envelope
/// `{"error": {"code", "kind", "message", "detail"?}}`.
///
/// `kind` is a stable machine-readable discriminator (`"bad-request"`,
/// `"not-found"`, `"unknown-version"`, `"fanout-failed"`, …); `message` is
/// for humans; `detail` carries structured context where one exists (e.g.
/// per-worker outcomes of a failed fan-out).
struct ApiError {
    status: u16,
    kind: &'static str,
    message: String,
    detail: Option<JsonValue>,
}

impl ApiError {
    fn new(status: u16, kind: &'static str, message: impl Into<String>) -> Self {
        Self {
            status,
            kind,
            message: message.into(),
            detail: None,
        }
    }

    fn bad(message: impl Into<String>) -> Self {
        Self::new(400, "bad-request", message)
    }

    fn not_found(message: impl Into<String>) -> Self {
        Self::new(404, "not-found", message)
    }

    fn with_detail(mut self, detail: JsonValue) -> Self {
        self.detail = Some(detail);
        self
    }

    fn into_response(self) -> ApiResponse {
        ApiResponse {
            status: self.status,
            body: render_error(self.status, self.kind, &self.message, self.detail).into(),
            cache_state: None,
            shutdown: false,
            deprecated: false,
        }
    }
}

fn render_error(status: u16, kind: &str, message: &str, detail: Option<JsonValue>) -> String {
    let mut members = vec![
        ("code".to_string(), JsonValue::Number(status as f64)),
        ("kind".to_string(), JsonValue::string(kind)),
        ("message".to_string(), JsonValue::string(message)),
    ];
    if let Some(detail) = detail {
        members.push(("detail".to_string(), detail));
    }
    JsonValue::Object(vec![("error".to_string(), JsonValue::Object(members))]).render()
}

/// Renders an error envelope without going through a handler — the transport
/// layer uses this for parse, timeout, and overload errors, so every
/// response on the wire carries the same `{"error": {...}}` shape.
pub fn error_body(status: u16, kind: &str, message: &str) -> String {
    render_error(status, kind, message, None)
}

/// What this server instance is in a (possibly distributed) deployment.
#[derive(Debug)]
pub enum Role {
    /// A self-contained server: every dataset is local, no fan-out.
    Standalone,
    /// A shard worker: boots from one shard of a `MOCHYSHD` family and
    /// answers `POST /v1/internal/count-shard` with serialized partials.
    Worker(Arc<WorkerState>),
    /// A coordinator: owns the shard manifest and scatters `/v1/count`
    /// queries for its distributed dataset across a worker set.
    Coordinator(Arc<Coordinator>),
}

impl Role {
    /// The role name `/healthz` reports.
    pub fn name(&self) -> &'static str {
        match self {
            Role::Standalone => "standalone",
            Role::Worker(_) => "worker",
            Role::Coordinator(_) => "coordinator",
        }
    }
}

/// Everything the request handlers need, shared across worker threads.
#[derive(Debug)]
pub struct ApiContext {
    /// The datasets this server exposes.
    pub registry: Registry,
    /// The rendered-body result cache.
    pub cache: QueryCache,
    /// Ceiling on the per-query `threads` parameter.
    pub max_threads: usize,
    /// Resident worker count (reported by `/healthz`).
    pub num_workers: usize,
    /// Bounded accept-queue depth (reported by `/healthz`).
    pub queue_depth: usize,
    /// Per-connection keep-alive request cap (reported by `/healthz`).
    pub max_requests_per_connection: usize,
    /// Keep-alive idle deadline, in milliseconds (reported by `/healthz`).
    pub idle_timeout_ms: u64,
    /// Server start time (reported by `/healthz`).
    pub started: Instant,
    /// Standalone, shard worker, or coordinator.
    pub role: Role,
}

/// Where a request path landed after version resolution.
enum Resolved {
    /// A `/v1/...` path, stripped to the canonical route.
    Canonical(String),
    /// An unversioned legacy path, mapped to its canonical route; the
    /// response carries `deprecation: true`.
    Legacy(String),
    /// A `/v{N}/...` prefix for an unsupported version `N`.
    UnknownVersion(String),
}

/// Resolves the versioned route space: `/v1/...` is canonical, a known
/// version prefix other than 1 is rejected as such, and everything else is
/// treated as a legacy alias of the same path (`/shutdown` specifically
/// aliases the canonical `/admin/shutdown`).
fn resolve_path(path: &str) -> Resolved {
    if let Some(rest) = path.strip_prefix("/v1") {
        if rest.is_empty() {
            return Resolved::Canonical("/".to_string());
        }
        if rest.starts_with('/') {
            return Resolved::Canonical(rest.to_string());
        }
    }
    if let Some(rest) = path.strip_prefix("/v") {
        let digits = rest.chars().take_while(char::is_ascii_digit).count();
        let after = rest.get(digits..).unwrap_or("");
        if digits > 0 && (after.is_empty() || after.starts_with('/')) {
            let version = rest.get(..digits).unwrap_or("");
            return Resolved::UnknownVersion(format!("/v{version}"));
        }
    }
    let canonical = match path {
        "/shutdown" => "/admin/shutdown",
        other => other,
    };
    Resolved::Legacy(canonical.to_string())
}

/// Routes a parsed request to its handler.
pub fn handle(ctx: &ApiContext, request: &Request) -> ApiResponse {
    let (canonical, deprecated) = match resolve_path(&request.path) {
        Resolved::Canonical(path) => (path, false),
        Resolved::Legacy(path) => (path, true),
        Resolved::UnknownVersion(prefix) => {
            return ApiError::new(
                404,
                "unknown-version",
                format!(
                    "unknown API version `{prefix}` (supported: /v1; unversioned paths are \
                     deprecated aliases of /v1)"
                ),
            )
            .into_response()
        }
    };
    // Internal routes exist only under /v1 — they are new with the
    // versioned API and deliberately get no legacy alias.
    let internal_only = canonical.starts_with("/internal/");
    let result = if internal_only && deprecated {
        Err(ApiError::not_found(format!(
            "no route for `{}` (internal routes are /v1-only)",
            request.path
        )))
    } else {
        match (request.method.as_str(), canonical.as_str()) {
            ("GET", "/healthz") => Ok(healthz(ctx)),
            ("GET", "/datasets") => Ok(datasets(ctx)),
            ("POST", "/datasets") => ingest(ctx, &request.body),
            ("POST", "/count") => count(ctx, &request.body),
            ("POST", "/profile") => profile(ctx, &request.body),
            ("POST", "/mutate") => mutate(ctx, &request.body),
            ("POST", "/internal/count-shard") => count_shard(ctx, &request.body),
            ("POST", "/admin/shutdown") => Ok(ApiResponse {
                shutdown: true,
                ..ApiResponse::ok(
                    JsonValue::Object(vec![(
                        "status".to_string(),
                        JsonValue::string("shutting-down"),
                    )])
                    .render(),
                )
            }),
            (
                _,
                "/healthz"
                | "/datasets"
                | "/count"
                | "/profile"
                | "/mutate"
                | "/admin/shutdown"
                | "/internal/count-shard",
            ) => Err(ApiError::new(
                405,
                "method-not-allowed",
                format!("method {} not allowed here", request.method),
            )),
            _ => Err(ApiError::not_found(format!(
                "no route for `{}`",
                request.path
            ))),
        }
    };
    let mut response = result.unwrap_or_else(ApiError::into_response);
    response.deprecated = deprecated;
    response
}

fn healthz(ctx: &ApiContext) -> ApiResponse {
    let (hits, misses, entries) = ctx.cache.stats();
    let mut members = vec![
        ("status".to_string(), JsonValue::string("ok")),
        ("role".to_string(), JsonValue::string(ctx.role.name())),
        (
            "datasets".to_string(),
            JsonValue::Number(ctx.registry.len() as f64),
        ),
        (
            "workers".to_string(),
            JsonValue::Number(ctx.num_workers as f64),
        ),
        (
            "queue_depth".to_string(),
            JsonValue::Number(ctx.queue_depth as f64),
        ),
        (
            "uptime_ms".to_string(),
            JsonValue::Number(ctx.started.elapsed().as_millis() as f64),
        ),
        (
            "keep_alive".to_string(),
            JsonValue::Object(vec![
                (
                    "max_requests".to_string(),
                    JsonValue::Number(ctx.max_requests_per_connection as f64),
                ),
                (
                    "idle_ms".to_string(),
                    JsonValue::Number(ctx.idle_timeout_ms as f64),
                ),
            ]),
        ),
        (
            "cache".to_string(),
            JsonValue::Object(vec![
                ("entries".to_string(), JsonValue::Number(entries as f64)),
                ("hits".to_string(), JsonValue::Number(hits as f64)),
                ("misses".to_string(), JsonValue::Number(misses as f64)),
            ]),
        ),
    ];
    match &ctx.role {
        Role::Standalone => {}
        Role::Worker(state) => {
            members.push((
                "shard".to_string(),
                JsonValue::Object(vec![
                    ("dataset".to_string(), JsonValue::string(state.dataset())),
                    (
                        "primary_shard".to_string(),
                        JsonValue::Number(state.primary_shard() as f64),
                    ),
                    (
                        "num_shards".to_string(),
                        JsonValue::Number(state.num_shards() as f64),
                    ),
                    (
                        "assembled".to_string(),
                        JsonValue::Bool(state.is_assembled()),
                    ),
                ]),
            ));
        }
        Role::Coordinator(coordinator) => {
            // The coordinator's health answer includes a live probe of its
            // worker table (each worker's /v1/healthz, short deadline), so
            // operators see reachability, not just configuration.
            let workers: Vec<JsonValue> = coordinator
                .probe_workers()
                .into_iter()
                .map(|(addr, healthy)| {
                    JsonValue::Object(vec![
                        ("addr".to_string(), JsonValue::string(addr)),
                        ("healthy".to_string(), JsonValue::Bool(healthy)),
                    ])
                })
                .collect();
            members.push((
                "fanout".to_string(),
                JsonValue::Object(vec![
                    (
                        "dataset".to_string(),
                        JsonValue::string(coordinator.dataset()),
                    ),
                    (
                        "num_shards".to_string(),
                        JsonValue::Number(coordinator.num_shards() as f64),
                    ),
                    (
                        "deadline_ms".to_string(),
                        JsonValue::Number(coordinator.deadline_ms() as f64),
                    ),
                    (
                        "retries".to_string(),
                        JsonValue::Number(coordinator.retries() as f64),
                    ),
                    ("workers".to_string(), JsonValue::Array(workers)),
                ]),
            ));
        }
    }
    ApiResponse::ok(JsonValue::Object(members).render())
}

fn datasets(ctx: &ApiContext) -> ApiResponse {
    let listing: Vec<JsonValue> = ctx
        .registry
        .entries()
        .into_iter()
        .map(|(name, dataset)| {
            let snapshot = dataset.snapshot();
            JsonValue::Object(vec![
                ("name".to_string(), JsonValue::string(name)),
                (
                    "generation".to_string(),
                    JsonValue::Number(snapshot.generation as f64),
                ),
                (
                    "num_nodes".to_string(),
                    JsonValue::Number(snapshot.num_nodes() as f64),
                ),
                (
                    "num_edges".to_string(),
                    JsonValue::Number(snapshot.num_edges() as f64),
                ),
            ])
        })
        .collect();
    ApiResponse::ok(
        JsonValue::Object(vec![("datasets".to_string(), JsonValue::Array(listing))]).render(),
    )
}

// ---------------------------------------------------------------------------
// POST /datasets — snapshot ingestion.

/// Ingests a client-uploaded `.mochy` snapshot (base64 inside the JSON body,
/// keeping the wire JSON-only) as a **fresh** registry entry.
///
/// The snapshot decoder fully validates the payload (magic, version,
/// checksum, offsets, id ranges, incidence transpose) before a hypergraph
/// exists at all, and the same dense-index bound that guards `/mutate`
/// applies to the declared node count — an upload can never translate into
/// an unbounded allocation. Name collisions are a 409: replacing a live
/// dataset under concurrent readers is an operator action, not an upload
/// side effect.
fn ingest(ctx: &ApiContext, body: &str) -> Result<ApiResponse, ApiError> {
    let parsed = parse_body(body)?;
    let name = required_str(&parsed, "name")?.to_string();
    let valid_name = !name.is_empty()
        && name.len() <= MAX_DATASET_NAME
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
    if !valid_name {
        return Err(ApiError::bad(format!(
            "`name` must be 1..={MAX_DATASET_NAME} characters of [A-Za-z0-9._-]"
        )));
    }
    let encoded = required_str(&parsed, "snapshot")?;
    let bytes = b64::decode(encoded)
        .map_err(|error| ApiError::bad(format!("`snapshot` is not valid base64: {error}")))?;
    let hypergraph = mochy_hypergraph::snapshot::read_snapshot_bytes(&bytes).map_err(|error| {
        ApiError::bad(format!("`snapshot` is not a valid .mochy file: {error}"))
    })?;
    if hypergraph.num_nodes() > MAX_NODE_ID as usize + 1 {
        return Err(ApiError::bad(format!(
            "snapshot declares {} nodes, above the maximum {} (node ids are a dense index)",
            hypergraph.num_nodes(),
            MAX_NODE_ID as usize + 1
        )));
    }
    let dataset = ctx
        .registry
        .insert_new(&name, hypergraph)
        .map_err(|error| ApiError::new(409, "conflict", error))?;
    let snapshot = dataset.snapshot();
    Ok(ApiResponse {
        status: 201,
        ..ApiResponse::ok(
            JsonValue::Object(vec![
                ("dataset".to_string(), JsonValue::string(name)),
                (
                    "generation".to_string(),
                    JsonValue::Number(snapshot.generation as f64),
                ),
                (
                    "num_nodes".to_string(),
                    JsonValue::Number(snapshot.num_nodes() as f64),
                ),
                (
                    "num_edges".to_string(),
                    JsonValue::Number(snapshot.num_edges() as f64),
                ),
            ])
            .render(),
        )
    })
}

// ---------------------------------------------------------------------------
// Request-body field helpers (client-supplied JSON must never panic).

fn parse_body(body: &str) -> Result<JsonValue, ApiError> {
    if body.trim().is_empty() {
        return Err(ApiError::bad("request body must be a JSON object"));
    }
    let value = json::parse(body).map_err(|e| ApiError::bad(format!("invalid JSON: {e}")))?;
    if matches!(value, JsonValue::Object(_)) {
        Ok(value)
    } else {
        Err(ApiError::bad("request body must be a JSON object"))
    }
}

fn required_str<'a>(body: &'a JsonValue, key: &str) -> Result<&'a str, ApiError> {
    body.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| ApiError::bad(format!("missing or non-string `{key}`")))
}

fn optional_usize(
    body: &JsonValue,
    key: &str,
    default: usize,
    max: usize,
) -> Result<usize, ApiError> {
    match body.get(key) {
        None => Ok(default),
        Some(value) => {
            let n = value
                .as_u64()
                .ok_or_else(|| ApiError::bad(format!("`{key}` must be a non-negative integer")))?;
            if n as usize > max {
                return Err(ApiError::bad(format!("`{key}` must be at most {max}")));
            }
            Ok(n as usize)
        }
    }
}

/// The `ratio` field of the wedge-ratio methods: defaults to 0.1, must be a
/// finite number in (0, 100] when present (a wrong *type* is an error, not a
/// silent fallback to the default).
fn optional_ratio(body: &JsonValue) -> Result<f64, ApiError> {
    let ratio = match body.get("ratio") {
        None => 0.1,
        Some(value) => value
            .as_f64()
            .ok_or_else(|| ApiError::bad("`ratio` must be a number in (0, 100]"))?,
    };
    if ratio.is_finite() && 0.0 < ratio && ratio <= 100.0 {
        Ok(ratio)
    } else {
        Err(ApiError::bad("`ratio` must be a number in (0, 100]"))
    }
}

fn optional_u64(body: &JsonValue, key: &str, default: u64) -> Result<u64, ApiError> {
    match body.get(key) {
        None => Ok(default),
        Some(value) => value
            .as_u64()
            .ok_or_else(|| ApiError::bad(format!("`{key}` must be a non-negative integer"))),
    }
}

fn f64_array(values: &[f64]) -> JsonValue {
    JsonValue::Array(values.iter().map(|&v| JsonValue::Number(v)).collect())
}

// ---------------------------------------------------------------------------
// POST /count

/// A normalized `/count` query: parsing fills every default, so rendering
/// [`CountQuery::canonical`] yields the same key for every spelling of the
/// same query.
struct CountQuery {
    dataset: String,
    method: Method,
    threads: usize,
    /// Scatter-gather shard count for exact counting (1 = unsharded). The
    /// merged report is bit-identical either way, but the parameter is part
    /// of the cache key: it changes how the answer is computed, and the key
    /// must record exactly what was asked.
    shards: usize,
    seed: u64,
    generalized: Option<u32>,
}

impl CountQuery {
    /// The canonical cache-key fragment (generation is appended by the
    /// caller).
    fn canonical(&self) -> String {
        let mut members = vec![("method".to_string(), JsonValue::string(self.method.name()))];
        match self.method {
            Method::Exact | Method::Incremental => {}
            Method::EdgeSample { samples } | Method::WedgeSample { samples } => {
                members.push(("samples".to_string(), JsonValue::Number(samples as f64)));
            }
            Method::WedgeSampleRatio { ratio } => {
                members.push(("ratio".to_string(), JsonValue::Number(ratio)));
            }
            Method::Adaptive(config) => {
                members.push((
                    "batch_size".to_string(),
                    JsonValue::Number(config.batch_size as f64),
                ));
            }
            Method::OnTheFly {
                samples,
                budget_entries,
                ..
            } => {
                members.push(("samples".to_string(), JsonValue::Number(samples as f64)));
                members.push((
                    "budget".to_string(),
                    JsonValue::Number(budget_entries as f64),
                ));
            }
        }
        members.push((
            "threads".to_string(),
            JsonValue::Number(self.threads as f64),
        ));
        members.push(("shards".to_string(), JsonValue::Number(self.shards as f64)));
        members.push(("seed".to_string(), JsonValue::Number(self.seed as f64)));
        members.push((
            "generalized".to_string(),
            self.generalized
                .map_or(JsonValue::Null, |k| JsonValue::Number(k as f64)),
        ));
        JsonValue::Object(members).render()
    }
}

fn parse_count_query(ctx: &ApiContext, body: &str) -> Result<CountQuery, ApiError> {
    let body = parse_body(body)?;
    let dataset = required_str(&body, "dataset")?.to_string();
    let samples = optional_usize(&body, "samples", 2_000, MAX_SAMPLES)?.max(1);
    let method_name = body
        .get("method")
        .map(|value| {
            value
                .as_str()
                .ok_or_else(|| ApiError::bad("`method` must be a string"))
        })
        .transpose()?
        .unwrap_or("mochy-e");
    let method = match method_name {
        "mochy-e" | "exact" => Method::Exact,
        "incremental" => Method::Incremental,
        "mochy-a" | "edge-sample" => Method::EdgeSample { samples },
        "mochy-a+" | "wedge-sample" => Method::WedgeSample { samples },
        "mochy-a+-ratio" | "wedge-ratio" => Method::WedgeSampleRatio {
            ratio: optional_ratio(&body)?,
        },
        "mochy-a+-adaptive" | "adaptive" => Method::Adaptive(AdaptiveConfig {
            batch_size: (samples / 8).max(1),
            min_batches: 2,
            max_batches: 8,
            target_relative_error: 0.05,
        }),
        "mochy-a+-otf" | "otf" => Method::OnTheFly {
            samples,
            budget_entries: optional_usize(&body, "budget", 4_096, 1 << 24)?.max(1),
            policy: MemoPolicy::Lru,
        },
        other => {
            return Err(ApiError::bad(format!(
                "unknown method `{other}` (expected mochy-e, incremental, mochy-a, mochy-a+, \
                 mochy-a+-ratio, mochy-a+-adaptive, or mochy-a+-otf)"
            )))
        }
    };
    let generalized = match body.get("generalized") {
        None | Some(JsonValue::Null) => None,
        Some(value) => match value.as_u64() {
            Some(k @ 3..=4) => Some(k as u32),
            _ => return Err(ApiError::bad("`generalized` must be 3 or 4")),
        },
    };
    // Sharded counting is an exact-only execution strategy; rejecting the
    // combination here keeps the engine's `Method::Exact` assertion out of
    // reach of untrusted bodies.
    let shards = optional_usize(&body, "shards", 1, MAX_SHARDS)?.max(1);
    if shards > 1 && !matches!(method, Method::Exact) {
        return Err(ApiError::bad(
            "`shards` above 1 requires the exact method (`mochy-e`)",
        ));
    }
    Ok(CountQuery {
        dataset,
        method,
        threads: optional_usize(&body, "threads", 1, ctx.max_threads)?.max(1),
        shards,
        seed: optional_u64(&body, "seed", 0)?,
        generalized,
    })
}

fn count(ctx: &ApiContext, body: &str) -> Result<ApiResponse, ApiError> {
    let query = parse_count_query(ctx, body)?;
    if let Role::Coordinator(coordinator) = &ctx.role {
        if query.dataset == coordinator.dataset() {
            return count_distributed(ctx, coordinator, &query);
        }
    }
    let dataset = ctx
        .registry
        .get(&query.dataset)
        .ok_or_else(|| ApiError::not_found(format!("unknown dataset `{}`", query.dataset)))?;
    let snapshot = dataset.snapshot();
    let key = format!(
        "count:{}@{}:{}",
        query.dataset,
        snapshot.generation,
        query.canonical()
    );
    if let Some(body) = ctx.cache.get(&key) {
        return Ok(ApiResponse {
            status: 200,
            body,
            cache_state: Some(CacheState::Hit),
            shutdown: false,
            deprecated: false,
        });
    }
    let body: Arc<str> = render_count(&query, &snapshot)?.into();
    ctx.cache.put(key, Arc::clone(&body));
    Ok(ApiResponse {
        status: 200,
        body,
        cache_state: Some(CacheState::Miss),
        shutdown: false,
        deprecated: false,
    })
}

/// Runs the engine against the snapshot and renders the deterministic body.
///
/// The config builders are fallible ([`mochy_core::engine::ConfigError`]):
/// `parse_count_query` already rejects the invalid combinations with
/// field-specific messages, so hitting a `ConfigError` here would mean the
/// two validations drifted apart — it still maps to a clean 400, never a
/// panic.
fn render_count(query: &CountQuery, snapshot: &Snapshot) -> Result<String, ApiError> {
    let mut config = CountConfig::new(query.method)
        .threads(query.threads)
        .seed(query.seed);
    if query.shards > 1 {
        config = config
            .shards(query.shards)
            .map_err(|error| ApiError::bad(error.to_string()))?;
    }
    if let Some(k) = query.generalized {
        config = config
            .generalized(k)
            .map_err(|error| ApiError::bad(error.to_string()))?;
    }
    let report: Option<CountReport> = snapshot
        .hypergraph
        .as_deref()
        .map(|hypergraph| config.build().count(hypergraph));

    let counts: Vec<f64> = report
        .as_ref()
        .map(|r| r.counts.as_slice().to_vec())
        .unwrap_or_else(|| vec![0.0; NUM_MOTIFS]);
    let mut members = vec![
        (
            "generation".to_string(),
            JsonValue::Number(snapshot.generation as f64),
        ),
        ("method".to_string(), JsonValue::string(query.method.name())),
        ("seed".to_string(), JsonValue::Number(query.seed as f64)),
        ("shards".to_string(), JsonValue::Number(query.shards as f64)),
        (
            "num_nodes".to_string(),
            JsonValue::Number(snapshot.num_nodes() as f64),
        ),
        (
            "num_edges".to_string(),
            JsonValue::Number(snapshot.num_edges() as f64),
        ),
        (
            "num_hyperwedges".to_string(),
            report
                .as_ref()
                .and_then(|r| r.num_hyperwedges)
                .map_or(JsonValue::Null, |w| JsonValue::Number(w as f64)),
        ),
        (
            "samples_drawn".to_string(),
            report
                .as_ref()
                .and_then(|r| r.samples_drawn)
                .map_or(JsonValue::Null, |s| JsonValue::Number(s as f64)),
        ),
        (
            "total".to_string(),
            JsonValue::Number(counts.iter().sum::<f64>()),
        ),
        ("counts".to_string(), f64_array(&counts)),
    ];
    let generalized = report.as_ref().and_then(|r| r.generalized.as_ref());
    members.push((
        "generalized".to_string(),
        match generalized {
            None => JsonValue::Null,
            Some(general) => JsonValue::Object(vec![
                ("k".to_string(), JsonValue::Number(general.k() as f64)),
                (
                    "num_motifs".to_string(),
                    JsonValue::Number(general.as_slice().len() as f64),
                ),
                (
                    "total".to_string(),
                    JsonValue::Number(general.total() as f64),
                ),
                (
                    "support".to_string(),
                    JsonValue::Number(general.support() as f64),
                ),
                (
                    "top".to_string(),
                    JsonValue::Array(
                        general
                            .top(10)
                            .into_iter()
                            .map(|(id, count)| {
                                JsonValue::Array(vec![
                                    JsonValue::Number(id as f64),
                                    JsonValue::Number(count as f64),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        },
    ));
    Ok(JsonValue::Object(members).render())
}

// ---------------------------------------------------------------------------
// POST /v1/count, coordinator fan-out path

/// Answers `/v1/count` for the coordinator's distributed dataset: scatter
/// the manifest's shards across the worker set, gather the partials, and
/// merge them in fixed shard order ([`merge_partials`]).
///
/// The body is rendered with the same field set and the same exact-integer
/// `f64` counts as a standalone `/count` on the assembled hypergraph, so
/// `counts`/`total`/`num_hyperwedges` are **bit-identical** to the
/// unsharded run (every contribution on both paths is a `+1.0` into an
/// accumulator far below 2^53, and the shortest-round-trip JSON numbers
/// survive the worker wire format bit-exactly). Merged bodies are memoized
/// in the same [`QueryCache`], so a repeat query is a byte-identical cache
/// hit without touching any worker.
fn count_distributed(
    ctx: &ApiContext,
    coordinator: &Coordinator,
    query: &CountQuery,
) -> Result<ApiResponse, ApiError> {
    if !matches!(query.method, Method::Exact) {
        return Err(ApiError::bad(format!(
            "dataset `{}` is distributed; only the exact method (`mochy-e`) fans out",
            query.dataset
        )));
    }
    if query.generalized.is_some() {
        return Err(ApiError::bad(format!(
            "`generalized` is not available on the distributed dataset `{}`",
            query.dataset
        )));
    }
    if query.shards > 1 {
        return Err(ApiError::bad(format!(
            "dataset `{}` is sharded by its manifest ({} shards); omit `shards`",
            query.dataset,
            coordinator.num_shards()
        )));
    }
    // The distributed dataset is immutable (generation 0 forever), so the
    // cache key never goes stale.
    let key = format!("count:{}@0:{}", query.dataset, query.canonical());
    if let Some(body) = ctx.cache.get(&key) {
        return Ok(ApiResponse {
            status: 200,
            body,
            cache_state: Some(CacheState::Hit),
            shutdown: false,
            deprecated: false,
        });
    }
    let partials = coordinator
        .scatter_gather(query.threads)
        .map_err(fanout_error)?;
    let (counts, num_hyperwedges) = merge_partials(&partials);
    let counts = counts.as_slice().to_vec();
    let body: Arc<str> = JsonValue::Object(vec![
        ("generation".to_string(), JsonValue::Number(0.0)),
        ("method".to_string(), JsonValue::string(query.method.name())),
        ("seed".to_string(), JsonValue::Number(query.seed as f64)),
        (
            "shards".to_string(),
            JsonValue::Number(coordinator.num_shards() as f64),
        ),
        (
            "num_nodes".to_string(),
            JsonValue::Number(coordinator.num_nodes() as f64),
        ),
        (
            "num_edges".to_string(),
            JsonValue::Number(coordinator.num_edges() as f64),
        ),
        (
            "num_hyperwedges".to_string(),
            JsonValue::Number(num_hyperwedges as f64),
        ),
        ("samples_drawn".to_string(), JsonValue::Null),
        (
            "total".to_string(),
            JsonValue::Number(counts.iter().sum::<f64>()),
        ),
        ("counts".to_string(), f64_array(&counts)),
        ("generalized".to_string(), JsonValue::Null),
    ])
    .render()
    .into();
    ctx.cache.put(key, Arc::clone(&body));
    Ok(ApiResponse {
        status: 200,
        body,
        cache_state: Some(CacheState::Miss),
        shutdown: false,
        deprecated: false,
    })
}

/// Maps a failed fan-out to the error envelope: 502 with per-shard,
/// per-worker outcomes under `detail` (partial-failure forensics belong in
/// the response, not just the coordinator's stderr).
fn fanout_error(error: FanoutError) -> ApiError {
    match error {
        FanoutError::NoWorkers => ApiError::new(
            502,
            "fanout-failed",
            "the coordinator has no workers configured",
        ),
        FanoutError::ShardsFailed { failures, gathered } => {
            let shards: Vec<JsonValue> = failures
                .iter()
                .map(|failure| {
                    let attempts: Vec<JsonValue> = failure
                        .attempts
                        .iter()
                        .map(|attempt| {
                            JsonValue::Object(vec![
                                ("worker".to_string(), JsonValue::string(&attempt.worker)),
                                ("error".to_string(), JsonValue::string(&attempt.error)),
                            ])
                        })
                        .collect();
                    JsonValue::Object(vec![
                        ("shard".to_string(), JsonValue::Number(failure.shard as f64)),
                        ("attempts".to_string(), JsonValue::Array(attempts)),
                    ])
                })
                .collect();
            let message = format!(
                "distributed count failed: {} shard(s) unserved after retries \
                 ({gathered} gathered)",
                failures.len()
            );
            ApiError::new(502, "fanout-failed", message).with_detail(JsonValue::Object(vec![
                ("gathered".to_string(), JsonValue::Number(gathered as f64)),
                ("failed_shards".to_string(), JsonValue::Array(shards)),
            ]))
        }
    }
}

// ---------------------------------------------------------------------------
// POST /v1/internal/count-shard (worker role only)

/// Computes one shard's [`ShardPartial`](mochy_core::shard::ShardPartial)
/// and answers with its JSON wire form. Only a `--worker` instance routes
/// here; any worker can serve any shard of its family (the coordinator
/// relies on that for retry reassignment).
fn count_shard(ctx: &ApiContext, body: &str) -> Result<ApiResponse, ApiError> {
    let Role::Worker(state) = &ctx.role else {
        return Err(ApiError::not_found(
            "this instance is not a shard worker (boot with --worker)",
        ));
    };
    let parsed = parse_body(body)?;
    let dataset = required_str(&parsed, "dataset")?;
    if dataset != state.dataset() {
        return Err(ApiError::not_found(format!(
            "unknown shard dataset `{dataset}` (this worker serves `{}`)",
            state.dataset()
        )));
    }
    let shard = parsed
        .get("shard")
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| ApiError::bad("missing or invalid `shard` (a non-negative integer)"))?;
    if shard >= state.num_shards() {
        return Err(ApiError::bad(format!(
            "shard {shard} is out of range (the manifest has {} shards)",
            state.num_shards()
        )));
    }
    let threads = optional_usize(&parsed, "threads", 1, ctx.max_threads)?.max(1);
    let partial = state
        .count_shard(shard, threads)
        .map_err(|error| ApiError::new(500, "shard-load", error))?;
    Ok(ApiResponse::ok(partial.to_json().render()))
}

// ---------------------------------------------------------------------------
// POST /profile

fn profile(ctx: &ApiContext, body: &str) -> Result<ApiResponse, ApiError> {
    let parsed = parse_body(body)?;
    let name = required_str(&parsed, "dataset")?.to_string();
    let samples = optional_usize(&parsed, "samples", 2_000, MAX_SAMPLES)?.max(1);
    let method_name = match parsed.get("method") {
        None => "mochy-e",
        Some(value) => value
            .as_str()
            .ok_or_else(|| ApiError::bad("`method` must be a string"))?,
    };
    // `canonical_name` collapses every spelling of the same method, so the
    // cache key below is normalized exactly like /count's.
    let (canonical_name, method) = match method_name {
        "mochy-e" | "exact" => ("mochy-e", CountingMethod::Exact),
        "mochy-a" | "edge-sample" => ("mochy-a", CountingMethod::SampleEdges(samples)),
        "mochy-a+" | "wedge-sample" => ("mochy-a+", CountingMethod::SampleWedges(samples)),
        "mochy-a+-ratio" | "wedge-ratio" => (
            "mochy-a+-ratio",
            CountingMethod::SampleWedgeRatio(optional_ratio(&parsed)?),
        ),
        other => {
            return Err(ApiError::bad(format!(
                "unknown profile method `{other}` (expected mochy-e, mochy-a, mochy-a+, or \
                 mochy-a+-ratio)"
            )))
        }
    };
    let randomizations = optional_usize(&parsed, "randomizations", 3, MAX_RANDOMIZATIONS)?.max(1);
    let threads = optional_usize(&parsed, "threads", 1, ctx.max_threads)?.max(1);
    let seed = optional_u64(&parsed, "seed", 0)?;

    let dataset = ctx
        .registry
        .get(&name)
        .ok_or_else(|| ApiError::not_found(format!("unknown dataset `{name}`")))?;
    let snapshot = dataset.snapshot();
    let Some(hypergraph) = snapshot.hypergraph.clone() else {
        return Err(ApiError::new(
            409,
            "conflict",
            format!("dataset `{name}` is empty; profiles need at least one hyperedge"),
        ));
    };

    let mut canonical_members = vec![("method".to_string(), JsonValue::string(canonical_name))];
    match method {
        CountingMethod::Exact => {}
        CountingMethod::SampleEdges(samples) | CountingMethod::SampleWedges(samples) => {
            canonical_members.push(("samples".to_string(), JsonValue::Number(samples as f64)));
        }
        CountingMethod::SampleWedgeRatio(ratio) => {
            canonical_members.push(("ratio".to_string(), JsonValue::Number(ratio)));
        }
    }
    canonical_members.push((
        "randomizations".to_string(),
        JsonValue::Number(randomizations as f64),
    ));
    canonical_members.push(("threads".to_string(), JsonValue::Number(threads as f64)));
    canonical_members.push(("seed".to_string(), JsonValue::Number(seed as f64)));
    let canonical = JsonValue::Object(canonical_members).render();
    let key = format!("profile:{name}@{}:{canonical}", snapshot.generation);
    if let Some(body) = ctx.cache.get(&key) {
        return Ok(ApiResponse {
            status: 200,
            body,
            cache_state: Some(CacheState::Hit),
            shutdown: false,
            deprecated: false,
        });
    }

    let estimator = ProfileEstimator {
        method,
        num_randomizations: randomizations,
        threads,
        seed,
    };
    let profile = estimator.estimate(&hypergraph);
    let rendered: Arc<str> = JsonValue::Object(vec![
        (
            "generation".to_string(),
            JsonValue::Number(snapshot.generation as f64),
        ),
        (
            "randomizations".to_string(),
            JsonValue::Number(randomizations as f64),
        ),
        ("seed".to_string(), JsonValue::Number(seed as f64)),
        (
            "real_total".to_string(),
            JsonValue::Number(profile.real_counts.total()),
        ),
        (
            "randomized_mean_total".to_string(),
            JsonValue::Number(profile.randomized_mean.total()),
        ),
        (
            "significances".to_string(),
            f64_array(&profile.significances),
        ),
        ("cp".to_string(), f64_array(&profile.cp)),
    ])
    .render()
    .into();
    ctx.cache.put(key, Arc::clone(&rendered));
    Ok(ApiResponse {
        status: 200,
        body: rendered,
        cache_state: Some(CacheState::Miss),
        shutdown: false,
        deprecated: false,
    })
}

// ---------------------------------------------------------------------------
// POST /mutate

fn mutate(ctx: &ApiContext, body: &str) -> Result<ApiResponse, ApiError> {
    let parsed = parse_body(body)?;
    let name = required_str(&parsed, "dataset")?.to_string();

    let mut inserts: Vec<Vec<NodeId>> = Vec::new();
    if let Some(raw) = parsed.get("insert") {
        let raw = raw
            .as_array()
            .ok_or_else(|| ApiError::bad("`insert` must be an array of node arrays"))?;
        for (i, edge) in raw.iter().enumerate() {
            let members = edge
                .as_array()
                .ok_or_else(|| ApiError::bad(format!("insert[{i}] must be a node array")))?;
            if members.is_empty() {
                return Err(ApiError::bad(format!(
                    "insert[{i}] is empty; hyperedges are non-empty node sets"
                )));
            }
            let mut nodes = Vec::with_capacity(members.len());
            for member in members {
                let node = member
                    .as_u64()
                    .filter(|&v| v <= crate::registry::MAX_NODE_ID as u64)
                    .ok_or_else(|| {
                        ApiError::bad(format!(
                            "insert[{i}] holds a non-node value (node ids are integers \
                             0..={})",
                            crate::registry::MAX_NODE_ID
                        ))
                    })?;
                nodes.push(node as NodeId);
            }
            inserts.push(nodes);
        }
    }

    // Removal ids must be integers; ids beyond the EdgeId range can never
    // have been issued, so they report `false` (strict no-op) rather than
    // erroring — mirroring the semantics for tombstoned ids.
    let mut removes: Vec<EdgeId> = Vec::new();
    if let Some(raw) = parsed.get("remove") {
        let raw = raw
            .as_array()
            .ok_or_else(|| ApiError::bad("`remove` must be an array of edge ids"))?;
        for (i, id) in raw.iter().enumerate() {
            let id = id
                .as_u64()
                .ok_or_else(|| ApiError::bad(format!("remove[{i}] must be an integer id")))?;
            removes.push(EdgeId::try_from(id).unwrap_or(EdgeId::MAX));
        }
    }

    let dataset = ctx
        .registry
        .get(&name)
        .ok_or_else(|| ApiError::not_found(format!("unknown dataset `{name}`")))?;
    let outcome = dataset
        .mutate(&inserts, &removes)
        .map_err(|error| match error {
            MutateError::Invalid(why) => ApiError::bad(why),
            MutateError::WriterPoisoned => ApiError::new(500, "internal", error.to_string()),
        })?;

    let body = JsonValue::Object(vec![
        ("dataset".to_string(), JsonValue::string(name)),
        (
            "generation".to_string(),
            JsonValue::Number(outcome.generation as f64),
        ),
        (
            "inserted".to_string(),
            JsonValue::Array(
                outcome
                    .inserted
                    .iter()
                    .map(|&e| JsonValue::Number(e as f64))
                    .collect(),
            ),
        ),
        (
            "removed".to_string(),
            JsonValue::Array(
                outcome
                    .removed
                    .iter()
                    .map(|&r| JsonValue::Bool(r))
                    .collect(),
            ),
        ),
        (
            "num_edges".to_string(),
            JsonValue::Number(outcome.num_edges as f64),
        ),
        (
            "total".to_string(),
            JsonValue::Number(outcome.total_instances),
        ),
    ]);
    Ok(ApiResponse::ok(body.render()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mochy_hypergraph::HypergraphBuilder;

    fn context() -> ApiContext {
        let registry = Registry::new();
        registry.insert(
            "fig2",
            HypergraphBuilder::new()
                .with_edge([0u32, 1, 2])
                .with_edge([0, 3, 1])
                .with_edge([4, 5, 0])
                .with_edge([6, 7, 2])
                .build()
                .unwrap(),
        );
        ApiContext {
            registry,
            cache: QueryCache::new(8),
            max_threads: 2,
            num_workers: 1,
            queue_depth: 4,
            max_requests_per_connection: 128,
            idle_timeout_ms: 5_000,
            started: Instant::now(),
            role: Role::Standalone,
        }
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".to_string(),
            path: path.to_string(),
            body: body.to_string(),
            keep_alive: true,
        }
    }

    #[test]
    fn count_is_cached_byte_identically() {
        let ctx = context();
        let request = post("/count", r#"{"dataset": "fig2"}"#);
        let first = handle(&ctx, &request);
        assert_eq!(first.status, 200, "{}", first.body);
        assert_eq!(first.cache_state, Some(CacheState::Miss));
        let second = handle(&ctx, &request);
        assert_eq!(second.cache_state, Some(CacheState::Hit));
        assert_eq!(first.body, second.body);
        // Equivalent spellings of the same query share the cache entry.
        let spelled = post(
            "/count",
            r#"{"dataset": "fig2", "method": "exact", "seed": 0, "threads": 1}"#,
        );
        let third = handle(&ctx, &spelled);
        assert_eq!(third.cache_state, Some(CacheState::Hit));
        assert_eq!(first.body, third.body);
        let doc = json::parse(&first.body).unwrap();
        assert_eq!(doc.get("total").and_then(JsonValue::as_f64), Some(3.0));
        assert_eq!(
            doc.get("num_hyperwedges").and_then(JsonValue::as_f64),
            Some(4.0)
        );
        assert_eq!(
            doc.get("counts").unwrap().as_array().unwrap().len(),
            NUM_MOTIFS
        );
    }

    #[test]
    fn malformed_bodies_are_rejected_not_panicked() {
        let ctx = context();
        for (body, needle) in [
            ("", "JSON object"),
            ("[1,2]", "JSON object"),
            ("{", "invalid JSON"),
            (r#"{"dataset": 7}"#, "`dataset`"),
            (r#"{"dataset": "nope"}"#, "unknown dataset"),
            (
                r#"{"dataset": "fig2", "method": "quantum"}"#,
                "unknown method",
            ),
            (r#"{"dataset": "fig2", "samples": -3}"#, "`samples`"),
            (r#"{"dataset": "fig2", "generalized": 5}"#, "3 or 4"),
            (r#"{"dataset": "fig2", "threads": 99}"#, "`threads`"),
            (r#"{"dataset": "fig2", "shards": 100}"#, "`shards`"),
            (r#"{"dataset": "fig2", "shards": -2}"#, "`shards`"),
            (
                r#"{"dataset": "fig2", "method": "mochy-a+", "shards": 2}"#,
                "exact",
            ),
            (
                r#"{"dataset": "fig2", "method": "mochy-a+-ratio", "ratio": "5"}"#,
                "`ratio`",
            ),
            (
                r#"{"dataset": "fig2", "method": "mochy-a+-ratio", "ratio": 0}"#,
                "`ratio`",
            ),
        ] {
            let response = handle(&ctx, &post("/count", body));
            assert_ne!(response.status, 200, "body `{body}` was accepted");
            assert!(
                response.body.contains(needle),
                "`{body}` gave `{}`",
                response.body
            );
        }
    }

    #[test]
    fn sharded_counts_match_unsharded_and_key_the_cache_by_shard_config() {
        let ctx = context();
        let unsharded = handle(&ctx, &post("/count", r#"{"dataset": "fig2"}"#));
        assert_eq!(unsharded.status, 200, "{}", unsharded.body);
        let sharded = handle(&ctx, &post("/count", r#"{"dataset": "fig2", "shards": 2}"#));
        assert_eq!(sharded.status, 200, "{}", sharded.body);
        // Different execution strategy, so a distinct cache entry…
        assert_eq!(sharded.cache_state, Some(CacheState::Miss));
        // …but bit-identical counted quantities.
        let a = json::parse(&unsharded.body).unwrap();
        let b = json::parse(&sharded.body).unwrap();
        for key in ["counts", "total", "num_hyperwedges"] {
            assert_eq!(a.get(key), b.get(key), "`{key}` diverges");
        }
        assert_eq!(b.get("shards").and_then(JsonValue::as_f64), Some(2.0));
        // Explicit `shards: 1` is the default spelling — shared entry.
        let explicit = handle(&ctx, &post("/count", r#"{"dataset": "fig2", "shards": 1}"#));
        assert_eq!(explicit.cache_state, Some(CacheState::Hit));
        assert_eq!(unsharded.body, explicit.body);
        // And a repeat of the sharded query hits its own entry.
        let again = handle(&ctx, &post("/count", r#"{"dataset": "fig2", "shards": 2}"#));
        assert_eq!(again.cache_state, Some(CacheState::Hit));
        assert_eq!(sharded.body, again.body);
    }

    #[test]
    fn mutate_validates_and_reports_noop_removals() {
        let ctx = context();
        let response = handle(
            &ctx,
            &post(
                "/mutate",
                r#"{"dataset": "fig2", "insert": [[1, 6]], "remove": [3, 3, 5000000000]}"#,
            ),
        );
        assert_eq!(response.status, 200, "{}", response.body);
        let doc = json::parse(&response.body).unwrap();
        let removed: Vec<bool> = doc
            .get("removed")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_bool().unwrap())
            .collect();
        assert_eq!(removed, vec![true, false, false]);

        let bad = handle(
            &ctx,
            &post("/mutate", r#"{"dataset": "fig2", "insert": [[]]}"#),
        );
        assert_eq!(bad.status, 400);
        let bad = handle(
            &ctx,
            &post("/mutate", r#"{"dataset": "fig2", "remove": ["x"]}"#),
        );
        assert_eq!(bad.status, 400);
        // Node ids above MAX_NODE_ID are rejected with a 400, not answered
        // with an unbounded dense-index allocation.
        let bad = handle(
            &ctx,
            &post(
                "/mutate",
                r#"{"dataset": "fig2", "insert": [[4294967295]]}"#,
            ),
        );
        assert_eq!(bad.status, 400, "{}", bad.body);
        assert!(bad.body.contains("node ids"), "{}", bad.body);
    }

    #[test]
    fn profile_cache_key_is_normalized_across_spellings() {
        let ctx = context();
        let first = handle(
            &ctx,
            &post("/profile", r#"{"dataset": "fig2", "randomizations": 2}"#),
        );
        assert_eq!(first.status, 200, "{}", first.body);
        assert_eq!(first.cache_state, Some(CacheState::Miss));
        // Different spelling, an explicit default, and an irrelevant
        // `samples` value all hit the same entry.
        let spelled = handle(
            &ctx,
            &post(
                "/profile",
                r#"{"dataset": "fig2", "method": "exact", "randomizations": 2, "samples": 77}"#,
            ),
        );
        assert_eq!(spelled.cache_state, Some(CacheState::Hit));
        assert_eq!(first.body, spelled.body);
    }

    /// The Figure-2 hypergraph as base64 `.mochy` bytes, as a client upload
    /// would carry it.
    fn fig2_snapshot_base64() -> String {
        let hypergraph = HypergraphBuilder::new()
            .with_edge([0u32, 1, 2])
            .with_edge([0, 3, 1])
            .with_edge([4, 5, 0])
            .with_edge([6, 7, 2])
            .build()
            .unwrap();
        let mut bytes = Vec::new();
        mochy_hypergraph::snapshot::write_snapshot(&hypergraph, &mut bytes).unwrap();
        b64::encode(&bytes)
    }

    #[test]
    fn ingest_registers_a_fresh_dataset_and_serves_it() {
        let ctx = context();
        let body = JsonValue::Object(vec![
            ("name".to_string(), JsonValue::string("uploaded")),
            (
                "snapshot".to_string(),
                JsonValue::string(fig2_snapshot_base64()),
            ),
        ])
        .render();
        let response = handle(&ctx, &post("/datasets", &body));
        assert_eq!(response.status, 201, "{}", response.body);
        let doc = json::parse(&response.body).unwrap();
        assert_eq!(doc.get("num_nodes").and_then(JsonValue::as_f64), Some(8.0));
        assert_eq!(doc.get("num_edges").and_then(JsonValue::as_f64), Some(4.0));
        assert_eq!(doc.get("generation").and_then(JsonValue::as_f64), Some(0.0));

        // The fresh dataset is listed and countable immediately.
        let listing = handle(
            &ctx,
            &Request {
                method: "GET".to_string(),
                path: "/datasets".to_string(),
                body: String::new(),
                keep_alive: true,
            },
        );
        assert!(listing.body.contains("uploaded"), "{}", listing.body);
        let counted = handle(&ctx, &post("/count", r#"{"dataset": "uploaded"}"#));
        assert_eq!(counted.status, 200, "{}", counted.body);
        let doc = json::parse(&counted.body).unwrap();
        assert_eq!(doc.get("total").and_then(JsonValue::as_f64), Some(3.0));

        // Re-uploading the same name is a conflict, not a replace.
        let again = handle(&ctx, &post("/datasets", &body));
        assert_eq!(again.status, 409, "{}", again.body);
    }

    #[test]
    fn ingest_rejects_bad_names_encodings_and_snapshots() {
        let ctx = context();
        let upload = |name: &str, snapshot: &str| {
            let body = JsonValue::Object(vec![
                ("name".to_string(), JsonValue::string(name)),
                ("snapshot".to_string(), JsonValue::string(snapshot)),
            ])
            .render();
            handle(&ctx, &post("/datasets", &body))
        };
        let good = fig2_snapshot_base64();
        for (name, needle) in [
            ("", "`name`"),
            ("spaced name", "`name`"),
            ("a/b", "`name`"),
            (&"x".repeat(101), "`name`"),
        ] {
            let response = upload(name, &good);
            assert_eq!(response.status, 400, "name `{name}`: {}", response.body);
            assert!(response.body.contains(needle), "{}", response.body);
        }

        let response = upload("ok", "!!not-base64!!");
        assert_eq!(response.status, 400);
        assert!(response.body.contains("base64"), "{}", response.body);

        // Valid base64, invalid snapshot: the typed decoder error surfaces.
        let response = upload("ok", &b64::encode(b"MOCHYSNP but truncated"));
        assert_eq!(response.status, 400);
        assert!(response.body.contains(".mochy"), "{}", response.body);

        // A corrupted-checksum upload is rejected with the checksum error.
        let mut corrupted = b64::decode(&good).unwrap();
        let last = corrupted.len() - 1;
        corrupted[last] ^= 0xff;
        let response = upload("ok", &b64::encode(&corrupted));
        assert_eq!(response.status, 400);
        assert!(response.body.contains("checksum"), "{}", response.body);

        // Missing fields are 400s, and nothing was registered along the way.
        let response = handle(&ctx, &post("/datasets", r#"{"name": "ok"}"#));
        assert_eq!(response.status, 400);
        assert_eq!(ctx.registry.len(), 1, "only the seeded fig2 remains");
    }

    #[test]
    fn routes_and_methods_are_enforced() {
        let ctx = context();
        let get = |path: &str| Request {
            method: "GET".to_string(),
            path: path.to_string(),
            body: String::new(),
            keep_alive: true,
        };
        assert_eq!(handle(&ctx, &get("/v1/healthz")).status, 200);
        assert_eq!(handle(&ctx, &get("/v1/datasets")).status, 200);
        assert_eq!(handle(&ctx, &get("/v1/count")).status, 405);
        assert_eq!(handle(&ctx, &post("/v1/healthz", "")).status, 405);
        assert_eq!(handle(&ctx, &get("/v1/nope")).status, 404);
        // Legacy aliases answer identically (modulo the deprecation flag).
        assert_eq!(handle(&ctx, &get("/healthz")).status, 200);
        assert_eq!(handle(&ctx, &get("/datasets")).status, 200);
        assert_eq!(handle(&ctx, &get("/count")).status, 405);
        assert_eq!(handle(&ctx, &post("/healthz", "")).status, 405);
        assert_eq!(handle(&ctx, &get("/nope")).status, 404);
        let shutdown = handle(&ctx, &post("/v1/admin/shutdown", ""));
        assert_eq!(shutdown.status, 200);
        assert!(shutdown.shutdown);
        assert!(!shutdown.deprecated);
        let legacy_shutdown = handle(&ctx, &post("/shutdown", ""));
        assert_eq!(legacy_shutdown.status, 200);
        assert!(legacy_shutdown.shutdown);
        assert!(legacy_shutdown.deprecated);
    }

    #[test]
    fn versioned_and_legacy_paths_resolve_to_the_same_bytes() {
        let ctx = context();
        let versioned = handle(&ctx, &post("/v1/count", r#"{"dataset": "fig2"}"#));
        assert_eq!(versioned.status, 200, "{}", versioned.body);
        assert!(!versioned.deprecated);
        assert_eq!(versioned.cache_state, Some(CacheState::Miss));
        let legacy = handle(&ctx, &post("/count", r#"{"dataset": "fig2"}"#));
        assert!(
            legacy.deprecated,
            "unversioned paths are deprecated aliases"
        );
        assert_eq!(legacy.cache_state, Some(CacheState::Hit));
        assert_eq!(versioned.body, legacy.body, "same route, same cache entry");
    }

    #[test]
    fn unknown_version_prefixes_get_a_structured_404() {
        let ctx = context();
        for path in ["/v2/healthz", "/v0/count", "/v12", "/v2"] {
            let response = handle(
                &ctx,
                &Request {
                    method: "GET".to_string(),
                    path: path.to_string(),
                    body: String::new(),
                    keep_alive: true,
                },
            );
            assert_eq!(response.status, 404, "{path}: {}", response.body);
            let doc = json::parse(&response.body).unwrap();
            let error = doc.get("error").unwrap();
            assert_eq!(
                error.get("kind").and_then(JsonValue::as_str),
                Some("unknown-version"),
                "{path}: {}",
                response.body
            );
        }
        // A path that merely *looks* versionish is a plain 404.
        let response = handle(
            &ctx,
            &Request {
                method: "GET".to_string(),
                path: "/version".to_string(),
                body: String::new(),
                keep_alive: true,
            },
        );
        assert_eq!(response.status, 404);
        assert!(response.body.contains("not-found"), "{}", response.body);
    }

    #[test]
    fn error_responses_carry_the_uniform_envelope() {
        let ctx = context();
        let cases: Vec<(ApiResponse, u16, &str)> = vec![
            (
                handle(&ctx, &post("/v1/count", r#"{"dataset": "nope"}"#)),
                404,
                "not-found",
            ),
            (handle(&ctx, &post("/v1/count", "{")), 400, "bad-request"),
            (
                handle(&ctx, &post("/v1/healthz", "")),
                405,
                "method-not-allowed",
            ),
        ];
        for (response, status, kind) in cases {
            assert_eq!(response.status, status, "{}", response.body);
            let doc = json::parse(&response.body).unwrap();
            let error = doc.get("error").unwrap();
            assert_eq!(
                error.get("code").and_then(JsonValue::as_u64),
                Some(status as u64)
            );
            assert_eq!(error.get("kind").and_then(JsonValue::as_str), Some(kind));
            assert!(error
                .get("message")
                .and_then(JsonValue::as_str)
                .is_some_and(|m| !m.is_empty()));
        }
    }

    #[test]
    fn count_shard_requires_the_worker_role_and_v1() {
        let ctx = context();
        let body = r#"{"dataset": "fig2", "shard": 0}"#;
        let standalone = handle(&ctx, &post("/v1/internal/count-shard", body));
        assert_eq!(standalone.status, 404, "{}", standalone.body);
        assert!(
            standalone.body.contains("not a shard worker"),
            "{}",
            standalone.body
        );
        // No legacy alias for internal routes.
        let legacy = handle(&ctx, &post("/internal/count-shard", body));
        assert_eq!(legacy.status, 404, "{}", legacy.body);
        assert!(legacy.body.contains("/v1-only"), "{}", legacy.body);
    }

    #[test]
    fn healthz_reports_the_role() {
        let ctx = context();
        let response = handle(
            &ctx,
            &Request {
                method: "GET".to_string(),
                path: "/v1/healthz".to_string(),
                body: String::new(),
                keep_alive: true,
            },
        );
        let doc = json::parse(&response.body).unwrap();
        assert_eq!(
            doc.get("role").and_then(JsonValue::as_str),
            Some("standalone")
        );
    }

    #[test]
    fn lru_cache_evicts_oldest_and_refreshes_on_hit() {
        let cache = QueryCache::new(2);
        cache.put("a".to_string(), "1".into());
        cache.put("b".to_string(), "2".into());
        assert!(cache.get("a").is_some()); // refreshes `a`
        cache.put("c".to_string(), "3".into()); // evicts `b`
        assert!(cache.get("b").is_none());
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        let (hits, misses, entries) = cache.stats();
        assert_eq!((hits, misses, entries), (3, 1, 2));

        let disabled = QueryCache::new(0);
        disabled.put("a".to_string(), "1".into());
        assert!(disabled.get("a").is_none());
    }
}
