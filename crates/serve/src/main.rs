//! `mochy-serve` — boot the motif-query service over a set of datasets.
//!
//! ```text
//! mochy-serve [--addr HOST:PORT | --port N] [--workers N] [--queue N]
//!             [--cache N] [--threads N] [--max-requests N] [--idle-ms N]
//!             [--gen NAME=DOMAIN:NODES:EDGES:SEED]... [--load NAME=PATH]...
//! ```
//!
//! With no dataset arguments the server exposes `fig2` (the paper's running
//! example) and a small generated `email` dataset. Port 0 binds an ephemeral
//! port; the chosen address is printed as `listening on HOST:PORT` so
//! scripts (the CI smoke stage) can scrape it. The process exits 0 after a
//! clean `POST /shutdown`.

#![forbid(unsafe_code)]

use std::io::Write;

use mochy_datagen::{generate, DomainKind, GeneratorConfig};
use mochy_hypergraph::{io as hio, HypergraphBuilder};
use mochy_serve::registry::Registry;
use mochy_serve::server::{Server, ServerConfig};

// `--load` accepts text edge-lists AND binary `.mochy` snapshots (format
// auto-detected by content) — the snapshot path is what makes cold boots
// I/O-bound instead of parse-bound.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServerConfig {
        addr: "127.0.0.1:7700".to_string(),
        ..ServerConfig::default()
    };
    let registry = Registry::new();
    let mut have_datasets = false;

    let mut iter = args.iter();
    while let Some(argument) = iter.next() {
        let mut take_value = |what: &str| -> String {
            iter.next().cloned().unwrap_or_else(|| {
                eprintln!("{what} requires a value");
                std::process::exit(2);
            })
        };
        match argument.as_str() {
            "--addr" => config.addr = take_value("--addr"),
            "--port" => {
                let port: u16 = take_value("--port").parse().unwrap_or_else(|_| {
                    eprintln!("invalid port");
                    std::process::exit(2);
                });
                config.addr = format!("127.0.0.1:{port}");
            }
            "--workers" => config.workers = parse_count(&take_value("--workers"), "--workers"),
            "--queue" => config.queue_depth = parse_count(&take_value("--queue"), "--queue"),
            "--cache" => config.cache_capacity = parse_count(&take_value("--cache"), "--cache"),
            "--threads" => config.max_threads = parse_count(&take_value("--threads"), "--threads"),
            "--max-requests" => {
                config.max_requests_per_connection =
                    parse_count(&take_value("--max-requests"), "--max-requests").max(1)
            }
            "--idle-ms" => {
                config.idle_timeout = std::time::Duration::from_millis(
                    parse_count(&take_value("--idle-ms"), "--idle-ms").max(1) as u64,
                )
            }
            "--gen" => {
                let spec = take_value("--gen");
                let (name, hypergraph) = generate_spec(&spec).unwrap_or_else(|error| {
                    eprintln!("bad --gen `{spec}`: {error}");
                    std::process::exit(2);
                });
                registry.insert(name, hypergraph);
                have_datasets = true;
            }
            "--load" => {
                let spec = take_value("--load");
                let Some((name, path)) = spec.split_once('=') else {
                    eprintln!("bad --load `{spec}` (expected NAME=PATH)");
                    std::process::exit(2);
                };
                match hio::read_file_auto(path) {
                    Ok(hypergraph) => registry.insert(name, hypergraph),
                    Err(error) => {
                        eprintln!("failed to load `{path}`: {error}");
                        std::process::exit(1);
                    }
                }
                have_datasets = true;
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                print_usage();
                std::process::exit(2);
            }
        }
    }

    if !have_datasets {
        let fig2 = HypergraphBuilder::new()
            .with_edge([0u32, 1, 2])
            .with_edge([0, 3, 1])
            .with_edge([4, 5, 0])
            .with_edge([6, 7, 2])
            .build()
            .unwrap_or_else(|error| {
                eprintln!("failed to build the figure-2 dataset: {error}");
                std::process::exit(1);
            });
        registry.insert("fig2", fig2);
        registry.insert(
            "email",
            generate(&GeneratorConfig::new(DomainKind::Email, 300, 900, 13)),
        );
    }

    for (name, dataset) in registry.entries() {
        let snapshot = dataset.snapshot();
        println!(
            "dataset {name}: {} nodes, {} hyperedges",
            snapshot.num_nodes(),
            snapshot.num_edges()
        );
    }
    let server = Server::start(config, registry).unwrap_or_else(|error| {
        eprintln!("failed to bind: {error}");
        std::process::exit(1);
    });
    println!("listening on {}", server.local_addr());
    std::io::stdout().flush().ok();
    server.wait();
    println!("mochy-serve: clean shutdown");
}

fn parse_count(text: &str, what: &str) -> usize {
    text.parse().unwrap_or_else(|_| {
        eprintln!("invalid {what} value `{text}`");
        std::process::exit(2);
    })
}

/// Parses `NAME=DOMAIN:NODES:EDGES:SEED` into a generated dataset.
fn generate_spec(spec: &str) -> Result<(String, mochy_hypergraph::Hypergraph), String> {
    let (name, rest) = spec
        .split_once('=')
        .ok_or("expected NAME=DOMAIN:NODES:EDGES:SEED")?;
    let parts: Vec<&str> = rest.split(':').collect();
    let [domain, nodes, edges, seed] = parts.as_slice() else {
        return Err("expected DOMAIN:NODES:EDGES:SEED after `=`".to_string());
    };
    let domain = DomainKind::ALL
        .into_iter()
        .find(|kind| kind.short_name() == *domain)
        .ok_or_else(|| format!("unknown domain `{domain}` (coauth|contact|email|tags|threads)"))?;
    let nodes: usize = nodes.parse().map_err(|_| "bad node count".to_string())?;
    let edges: usize = edges.parse().map_err(|_| "bad edge count".to_string())?;
    let seed: u64 = seed.parse().map_err(|_| "bad seed".to_string())?;
    if nodes == 0 || edges == 0 {
        return Err("node and edge counts must be positive".to_string());
    }
    Ok((
        name.to_string(),
        generate(&GeneratorConfig::new(domain, nodes, edges, seed)),
    ))
}

fn print_usage() {
    eprintln!("usage: mochy-serve [--addr HOST:PORT | --port N] [--workers N] [--queue N]");
    eprintln!("                   [--cache N] [--threads N] [--max-requests N] [--idle-ms N]");
    eprintln!("                   [--gen NAME=DOMAIN:NODES:EDGES:SEED]... [--load NAME=PATH]...");
    eprintln!("(--load auto-detects text edge-lists and binary .mochy snapshots)");
    eprintln!("routes: GET /healthz, GET /datasets, POST /datasets, POST /count,");
    eprintln!("        POST /profile, POST /mutate, POST /shutdown (see README)");
}
