//! `mochy-serve` — boot the motif-query service over a set of datasets.
//!
//! ```text
//! mochy-serve [--addr HOST:PORT | --port N] [--workers N] [--queue N]
//!             [--cache N] [--threads N] [--max-requests N] [--idle-ms N]
//!             [--gen NAME=DOMAIN:NODES:EDGES:SEED]... [--load NAME=PATH]...
//!             [--worker NAME=MANIFEST[:SHARD]]
//!             [--coordinator NAME=MANIFEST --peers ADDR,ADDR,...]
//!             [--fanout-deadline-ms N] [--fanout-retries N]
//! ```
//!
//! With no dataset arguments the server exposes `fig2` (the paper's running
//! example) and a small generated `email` dataset. Port 0 binds an ephemeral
//! port; the chosen address is printed as `listening on HOST:PORT` so
//! scripts (the CI smoke stage) can scrape it. The process exits 0 after a
//! clean `POST /v1/admin/shutdown`.
//!
//! `--worker` boots a shard worker from one slice of a `MOCHYSHD` family
//! (`MANIFEST` is the `.shards` manifest path, `SHARD` the primary shard,
//! default 0); `--coordinator` boots a fan-out coordinator that owns only
//! the manifest and scatters `POST /v1/count` over the `--peers` worker
//! addresses. The two are mutually exclusive.

#![forbid(unsafe_code)]

use std::io::Write;

use std::sync::Arc;
use std::time::Duration;

use mochy_datagen::{generate, DomainKind, GeneratorConfig};
use mochy_hypergraph::{io as hio, HypergraphBuilder};
use mochy_serve::api::Role;
use mochy_serve::coordinator::Coordinator;
use mochy_serve::registry::Registry;
use mochy_serve::server::{Server, ServerConfig};
use mochy_serve::worker::WorkerState;

// `--load` accepts text edge-lists AND binary `.mochy` snapshots (format
// auto-detected by content) — the snapshot path is what makes cold boots
// I/O-bound instead of parse-bound.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = ServerConfig {
        addr: "127.0.0.1:7700".to_string(),
        ..ServerConfig::default()
    };
    let registry = Registry::new();
    let mut have_datasets = false;
    let mut worker_spec: Option<String> = None;
    let mut coordinator_spec: Option<String> = None;
    let mut peers: Vec<String> = Vec::new();
    let mut fanout_deadline = Duration::from_millis(10_000);
    let mut fanout_retries = 2usize;

    let mut iter = args.iter();
    while let Some(argument) = iter.next() {
        let mut take_value = |what: &str| -> String {
            iter.next().cloned().unwrap_or_else(|| {
                eprintln!("{what} requires a value");
                std::process::exit(2);
            })
        };
        match argument.as_str() {
            "--addr" => config.addr = take_value("--addr"),
            "--port" => {
                let port: u16 = take_value("--port").parse().unwrap_or_else(|_| {
                    eprintln!("invalid port");
                    std::process::exit(2);
                });
                config.addr = format!("127.0.0.1:{port}");
            }
            "--workers" => config.workers = parse_count(&take_value("--workers"), "--workers"),
            "--queue" => config.queue_depth = parse_count(&take_value("--queue"), "--queue"),
            "--cache" => config.cache_capacity = parse_count(&take_value("--cache"), "--cache"),
            "--threads" => config.max_threads = parse_count(&take_value("--threads"), "--threads"),
            "--max-requests" => {
                config.max_requests_per_connection =
                    parse_count(&take_value("--max-requests"), "--max-requests").max(1)
            }
            "--idle-ms" => {
                config.idle_timeout = std::time::Duration::from_millis(
                    parse_count(&take_value("--idle-ms"), "--idle-ms").max(1) as u64,
                )
            }
            "--gen" => {
                let spec = take_value("--gen");
                let (name, hypergraph) = generate_spec(&spec).unwrap_or_else(|error| {
                    eprintln!("bad --gen `{spec}`: {error}");
                    std::process::exit(2);
                });
                registry.insert(name, hypergraph);
                have_datasets = true;
            }
            "--load" => {
                let spec = take_value("--load");
                let Some((name, path)) = spec.split_once('=') else {
                    eprintln!("bad --load `{spec}` (expected NAME=PATH)");
                    std::process::exit(2);
                };
                match hio::read_file_auto(path) {
                    Ok(hypergraph) => registry.insert(name, hypergraph),
                    Err(error) => {
                        eprintln!("failed to load `{path}`: {error}");
                        std::process::exit(1);
                    }
                }
                have_datasets = true;
            }
            "--worker" => worker_spec = Some(take_value("--worker")),
            "--coordinator" => coordinator_spec = Some(take_value("--coordinator")),
            "--peers" => peers.extend(
                take_value("--peers")
                    .split(',')
                    .filter(|addr| !addr.is_empty())
                    .map(str::to_string),
            ),
            "--fanout-deadline-ms" => {
                fanout_deadline = Duration::from_millis(
                    parse_count(&take_value("--fanout-deadline-ms"), "--fanout-deadline-ms").max(1)
                        as u64,
                )
            }
            "--fanout-retries" => {
                fanout_retries = parse_count(&take_value("--fanout-retries"), "--fanout-retries")
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other => {
                eprintln!("unknown argument `{other}`");
                print_usage();
                std::process::exit(2);
            }
        }
    }

    if worker_spec.is_some() && coordinator_spec.is_some() {
        eprintln!("--worker and --coordinator are mutually exclusive");
        std::process::exit(2);
    }
    let role = if let Some(spec) = worker_spec {
        let (name, manifest, shard) = parse_shard_spec(&spec, "--worker", true);
        let state = WorkerState::boot(&name, std::path::Path::new(&manifest), shard)
            .unwrap_or_else(|error| {
                eprintln!("failed to boot worker from `{manifest}`: {error}");
                std::process::exit(1);
            });
        println!(
            "worker for dataset {name}: shard {shard} of {} ({manifest})",
            state.num_shards()
        );
        have_datasets = true; // a worker serves its shard family, not the demo datasets
        Role::Worker(Arc::new(state))
    } else if let Some(spec) = coordinator_spec {
        if peers.is_empty() {
            eprintln!("--coordinator requires at least one worker address via --peers");
            std::process::exit(2);
        }
        let (name, manifest, _) = parse_shard_spec(&spec, "--coordinator", false);
        let coordinator = Coordinator::boot(
            &name,
            std::path::Path::new(&manifest),
            peers.clone(),
            fanout_deadline,
            fanout_retries,
        )
        .unwrap_or_else(|error| {
            eprintln!("failed to boot coordinator from `{manifest}`: {error}");
            std::process::exit(1);
        });
        println!(
            "coordinator for dataset {name}: {} shards over {} workers ({manifest})",
            coordinator.num_shards(),
            peers.len()
        );
        have_datasets = true; // the distributed dataset lives on the workers
        Role::Coordinator(Arc::new(coordinator))
    } else {
        Role::Standalone
    };

    if !have_datasets {
        let fig2 = HypergraphBuilder::new()
            .with_edge([0u32, 1, 2])
            .with_edge([0, 3, 1])
            .with_edge([4, 5, 0])
            .with_edge([6, 7, 2])
            .build()
            .unwrap_or_else(|error| {
                eprintln!("failed to build the figure-2 dataset: {error}");
                std::process::exit(1);
            });
        registry.insert("fig2", fig2);
        registry.insert(
            "email",
            generate(&GeneratorConfig::new(DomainKind::Email, 300, 900, 13)),
        );
    }

    for (name, dataset) in registry.entries() {
        let snapshot = dataset.snapshot();
        println!(
            "dataset {name}: {} nodes, {} hyperedges",
            snapshot.num_nodes(),
            snapshot.num_edges()
        );
    }
    let server = Server::start_with_role(config, registry, role).unwrap_or_else(|error| {
        eprintln!("failed to bind: {error}");
        std::process::exit(1);
    });
    println!("listening on {}", server.local_addr());
    std::io::stdout().flush().ok();
    server.wait();
    println!("mochy-serve: clean shutdown");
}

/// Parses `NAME=MANIFEST[:SHARD]` (the `:SHARD` suffix only when
/// `with_shard`); exits with usage code 2 on malformed specs.
fn parse_shard_spec(spec: &str, flag: &str, with_shard: bool) -> (String, String, usize) {
    let Some((name, rest)) = spec.split_once('=') else {
        eprintln!(
            "bad {flag} `{spec}` (expected NAME=MANIFEST{})",
            if with_shard { "[:SHARD]" } else { "" }
        );
        std::process::exit(2);
    };
    if with_shard {
        if let Some((path, shard)) = rest.rsplit_once(':') {
            if !shard.is_empty() && shard.chars().all(|c| c.is_ascii_digit()) {
                let shard = shard.parse().unwrap_or_else(|_| {
                    eprintln!("bad {flag} shard index `{shard}`");
                    std::process::exit(2);
                });
                return (name.to_string(), path.to_string(), shard);
            }
        }
    }
    (name.to_string(), rest.to_string(), 0)
}

fn parse_count(text: &str, what: &str) -> usize {
    text.parse().unwrap_or_else(|_| {
        eprintln!("invalid {what} value `{text}`");
        std::process::exit(2);
    })
}

/// Parses `NAME=DOMAIN:NODES:EDGES:SEED` into a generated dataset.
fn generate_spec(spec: &str) -> Result<(String, mochy_hypergraph::Hypergraph), String> {
    let (name, rest) = spec
        .split_once('=')
        .ok_or("expected NAME=DOMAIN:NODES:EDGES:SEED")?;
    let parts: Vec<&str> = rest.split(':').collect();
    let [domain, nodes, edges, seed] = parts.as_slice() else {
        return Err("expected DOMAIN:NODES:EDGES:SEED after `=`".to_string());
    };
    let domain = DomainKind::ALL
        .into_iter()
        .find(|kind| kind.short_name() == *domain)
        .ok_or_else(|| format!("unknown domain `{domain}` (coauth|contact|email|tags|threads)"))?;
    let nodes: usize = nodes.parse().map_err(|_| "bad node count".to_string())?;
    let edges: usize = edges.parse().map_err(|_| "bad edge count".to_string())?;
    let seed: u64 = seed.parse().map_err(|_| "bad seed".to_string())?;
    if nodes == 0 || edges == 0 {
        return Err("node and edge counts must be positive".to_string());
    }
    Ok((
        name.to_string(),
        generate(&GeneratorConfig::new(domain, nodes, edges, seed)),
    ))
}

fn print_usage() {
    eprintln!("usage: mochy-serve [--addr HOST:PORT | --port N] [--workers N] [--queue N]");
    eprintln!("                   [--cache N] [--threads N] [--max-requests N] [--idle-ms N]");
    eprintln!("                   [--gen NAME=DOMAIN:NODES:EDGES:SEED]... [--load NAME=PATH]...");
    eprintln!("                   [--worker NAME=MANIFEST[:SHARD]]");
    eprintln!("                   [--coordinator NAME=MANIFEST --peers ADDR,ADDR,...]");
    eprintln!("                   [--fanout-deadline-ms N] [--fanout-retries N]");
    eprintln!("(--load auto-detects text edge-lists and binary .mochy snapshots)");
    eprintln!("routes: GET /v1/healthz, GET /v1/datasets, POST /v1/datasets, POST /v1/count,");
    eprintln!("        POST /v1/profile, POST /v1/mutate, POST /v1/admin/shutdown (see README);");
    eprintln!("        unversioned paths remain as deprecated aliases");
}
