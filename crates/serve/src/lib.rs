//! `mochy-serve` — a concurrent motif-query service over shared dataset
//! snapshots.
//!
//! The counting engines of this workspace were, until now, only drivable as
//! a CLI/bench harness: every question about a hypergraph paid a full
//! process start and a full recount. The paper frames h-motif profiles as a
//! *query* primitive — characteristic profiles are compared across datasets
//! and re-requested by downstream analyses — which is exactly the access
//! pattern a long-lived caching service should own. This crate is that
//! service layer:
//!
//! - [`registry`] — named datasets as **immutable snapshots**
//!   (`Arc<Hypergraph>`): readers grab the current snapshot with one brief
//!   pointer clone and then compute entirely lock-free on it; a mutation
//!   serializes through a per-dataset writer (a
//!   [`StreamingEngine`](mochy_core::streaming::StreamingEngine), so counts
//!   are maintained incrementally) and *publishes a fresh snapshot* by
//!   swapping the shared pointer. Readers that started on the old snapshot
//!   finish on the old snapshot — queries are always internally consistent.
//! - [`api`] — the versioned JSON API under `/v1`: `GET /v1/healthz`,
//!   `GET /v1/datasets`, `POST /v1/datasets` (ingest an uploaded base64
//!   `.mochy` snapshot as a fresh dataset), `POST /v1/count`,
//!   `POST /v1/profile`, `POST /v1/mutate`, `POST /v1/admin/shutdown`, and
//!   the worker-internal `POST /v1/internal/count-shard`. The pre-versioning
//!   paths (`/healthz`, `/count`, …, `POST /shutdown`) remain as deprecated
//!   aliases answering identical bytes plus a `deprecation: true` header.
//!   Errors share one envelope: `{"error": {"code", "kind", "message",
//!   "detail"?}}`. Responses are rendered deterministically (no timestamps
//!   or timings in cacheable bodies) and memoized in an LRU
//!   [`api::QueryCache`] keyed by `(dataset, generation, normalized query)`
//!   — a cache hit returns the exact bytes the uncached run produced.
//! - [`http`] — a hand-rolled HTTP/1.1 front end over
//!   `std::net::TcpListener` (the sandbox is offline and vendors no HTTP
//!   stack; the subset implemented here — persistent keep-alive connections,
//!   pipelined requests out of a rolling buffer, `Content-Length` bodies —
//!   is all the API needs). `Connection: keep-alive|close` is honored, and
//!   every wait is bounded by an idle deadline between requests plus a
//!   whole-request deadline within one.
//! - [`server`] — the accept loop, driven by the shared
//!   [`mochy_hypergraph::parallel::WorkerPool`]: connections are handed to a
//!   fixed set of resident workers through a **bounded** queue, and a worker
//!   owns its connection for the whole keep-alive session (up to a
//!   per-connection request cap). When the queue is full the accept loop
//!   answers `503 Service Unavailable` inline instead of blocking —
//!   explicit backpressure, so overload never wedges accept.
//! - [`worker`], [`coordinator`], [`client`] — multi-process shard fan-out:
//!   a `--worker` boots from one slice of a `MOCHYSHD` family and answers
//!   `POST /v1/internal/count-shard`; a `--coordinator` owns only the
//!   manifest and scatters a `POST /v1/count` across its worker set over
//!   keep-alive HTTP ([`client::HttpClient`]), gathering and merging the
//!   [`ShardPartial`](mochy_core::shard::ShardPartial)s in fixed shard
//!   order — bit-identical to the unsharded count, with deadline-bounded
//!   requests and retry/reassignment around dead workers.
//!
//! ```no_run
//! use mochy_hypergraph::HypergraphBuilder;
//! use mochy_serve::registry::Registry;
//! use mochy_serve::server::{Server, ServerConfig};
//!
//! let registry = Registry::new();
//! registry.insert(
//!     "fig2",
//!     HypergraphBuilder::new()
//!         .with_edge([0u32, 1, 2])
//!         .with_edge([0, 3, 1])
//!         .with_edge([4, 5, 0])
//!         .with_edge([6, 7, 2])
//!         .build()
//!         .unwrap(),
//! );
//! let server = Server::start(ServerConfig::default(), registry).unwrap();
//! println!("listening on {}", server.local_addr());
//! server.wait(); // until POST /shutdown
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod b64;
pub mod client;
pub mod coordinator;
pub mod http;
pub mod registry;
pub mod server;
pub mod worker;
