//! Standard base64 (RFC 4648, with padding) — the transport encoding of
//! binary `.mochy` snapshots inside the JSON `POST /datasets` body.
//!
//! The workspace vendors no encoding crate and the HTTP layer is
//! deliberately JSON-only on the wire (every body, every error), so binary
//! uploads ride inside a JSON string. Decoding is strict: non-alphabet
//! bytes, bad padding, and non-canonical trailing bits are all errors —
//! an upload that decodes at all decodes to exactly one byte string.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Marker in [`REVERSE`] for bytes outside the alphabet.
const INVALID: u8 = 0xff;

/// 256-entry reverse lookup: one indexed load per input symbol (a linear
/// alphabet scan per symbol would cost ~64x more comparisons on a
/// megabyte-sized snapshot upload, on a resident worker thread).
const REVERSE: [u8; 256] = {
    let mut table = [INVALID; 256];
    let mut index = 0;
    while index < ALPHABET.len() {
        // mochy-lint: allow(panic-free-serve) reason="const-evaluated table build; an out-of-range index here is a compile error, not a runtime panic"
        table[ALPHABET[index] as usize] = index as u8;
        index += 1;
    }
    table
};

/// The alphabet symbol encoding the low six bits of `bits`.
fn symbol(bits: u32) -> char {
    // mochy-lint: allow(panic-free-serve) reason="index is masked to 0x3f and ALPHABET has exactly 64 entries"
    ALPHABET[(bits & 0x3f) as usize] as char
}

/// Encodes `bytes` as standard padded base64.
pub fn encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b0 = u32::from(chunk.first().copied().unwrap_or(0));
        let b1 = u32::from(chunk.get(1).copied().unwrap_or(0));
        let b2 = u32::from(chunk.get(2).copied().unwrap_or(0));
        let word = (b0 << 16) | (b1 << 8) | b2;
        out.push(symbol(word >> 18));
        out.push(symbol(word >> 12));
        out.push(if chunk.len() > 1 {
            symbol(word >> 6)
        } else {
            '='
        });
        out.push(if chunk.len() > 2 { symbol(word) } else { '=' });
    }
    out
}

/// Decodes standard padded base64. Strict: rejects non-alphabet bytes,
/// lengths that are not a multiple of four, interior padding, and
/// non-canonical encodings (set bits beyond the payload).
pub fn decode(text: &str) -> Result<Vec<u8>, String> {
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(format!(
            "base64 length {} is not a multiple of 4",
            bytes.len()
        ));
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (index, chunk) in bytes.chunks(4).enumerate() {
        let last = index + 1 == bytes.len() / 4;
        let padding = chunk.iter().filter(|&&b| b == b'=').count();
        if padding > 2 || (padding > 0 && !last) {
            return Err("padding may only end the input".to_string());
        }
        // The `padding` trailing bytes are '='; no '=' may appear earlier.
        // (`padding <= 2` was checked above, so the range is in bounds; the
        // full-chunk fallback keeps this panic-free regardless.)
        let payload = chunk.get(..4 - padding).unwrap_or(chunk);
        if payload.contains(&b'=') {
            return Err("malformed padding".to_string());
        }
        let mut word = 0u32;
        for &byte in payload {
            let value = REVERSE.get(usize::from(byte)).copied().unwrap_or(INVALID);
            if value == INVALID {
                return Err(format!("byte {byte:#04x} is not base64"));
            }
            word = (word << 6) | u32::from(value);
        }
        match padding {
            0 => {
                out.push((word >> 16) as u8);
                out.push((word >> 8) as u8);
                out.push(word as u8);
            }
            1 => {
                // 18 bits of payload in 3 symbols; the low 2 bits must be 0.
                if word & 0x3 != 0 {
                    return Err("non-canonical base64 (trailing bits set)".to_string());
                }
                out.push((word >> 10) as u8);
                out.push((word >> 2) as u8);
            }
            _ => {
                // 12 bits of payload in 2 symbols; the low 4 bits must be 0.
                if word & 0xf != 0 {
                    return Err("non-canonical base64 (trailing bits set)".to_string());
                }
                out.push((word >> 4) as u8);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_test_vectors() {
        for (plain, encoded) in [
            ("", ""),
            ("f", "Zg=="),
            ("fo", "Zm8="),
            ("foo", "Zm9v"),
            ("foob", "Zm9vYg=="),
            ("fooba", "Zm9vYmE="),
            ("foobar", "Zm9vYmFy"),
        ] {
            assert_eq!(encode(plain.as_bytes()), encoded);
            assert_eq!(decode(encoded).unwrap(), plain.as_bytes());
        }
    }

    #[test]
    fn binary_round_trip() {
        let bytes: Vec<u8> = (0u16..=255).map(|b| b as u8).cycle().take(1000).collect();
        assert_eq!(decode(&encode(&bytes)).unwrap(), bytes);
    }

    #[test]
    fn strict_decoding_rejects_malformed_input() {
        for bad in [
            "Zg=",      // bad length
            "Zg===a",   // bad length
            "Z!==",     // non-alphabet
            "Zg==Zm8=", // interior padding
            "====",     // all padding
            "Zh==",     // trailing bits set (h = 0b100001)
            "=A==",     // padding before payload symbols
            "Zm9=Zm9v", // padded quartet that is not the last
        ] {
            assert!(decode(bad).is_err(), "`{bad}` decoded");
        }
    }
}
