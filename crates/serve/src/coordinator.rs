//! Coordinator-side scatter-gather over shard workers.
//!
//! The coordinator owns the `MOCHYSHD` manifest of a distributed dataset
//! but none of its edges. A `POST /v1/count` for that dataset is fanned out
//! as one `POST /v1/internal/count-shard` per shard across the configured
//! worker set; the returned [`ShardPartial`]s are validated against the
//! manifest and merged by the caller with
//! [`merge_partials`](mochy_core::shard::merge_partials).
//!
//! # Why the merged answer is bit-identical to unsharded MoCHy-E
//!
//! Each partial is computed by the worker with
//! [`mochy_core::shard::count_shard_partial`] over the full assembled
//! hypergraph, so a shard's partial does not depend on *which* worker
//! computed it, when, or after how many retries. [`Coordinator::scatter_gather`]
//! returns the partials sorted by shard index (`0..K-1`), and `merge_partials`
//! folds them in that fixed order (internal before boundary counts) using
//! exact `f64` integer additions — the merged counts equal the single-process
//! sharded run bit for bit, which in turn equals plain MoCHy-E. Worker
//! failures, reassignment, and retry order therefore cannot perturb a single
//! bit of the result.
//!
//! # Failure semantics
//!
//! Every worker request carries a whole-exchange deadline. A worker that
//! errors or stalls is marked unhealthy and its remaining shards are
//! reassigned to surviving workers, each shard getting at most `1 + retries`
//! total attempts. Shards still unserved after that surface as
//! [`FanoutError::ShardsFailed`] with the full per-worker attempt log, which
//! the API layer renders under the error envelope's `detail` field.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use mochy_core::shard::ShardPartial;
use mochy_hypergraph::{read_manifest_file, ShardManifest};
use mochy_json::JsonValue;

use crate::client::HttpClient;

/// One worker in the coordinator's table.
#[derive(Debug)]
struct WorkerEntry {
    addr: String,
    /// Cleared when a request to this worker fails; restored by a
    /// successful health probe (or when every worker is marked down, to
    /// avoid deadlocking on a fully-unhealthy table).
    healthy: AtomicBool,
}

/// One failed attempt at serving a shard.
#[derive(Debug, Clone)]
pub struct Attempt {
    /// The worker address that was asked.
    pub worker: String,
    /// Why the attempt failed.
    pub error: String,
}

/// A shard that no worker managed to serve.
#[derive(Debug, Clone)]
pub struct ShardFailure {
    /// The shard index.
    pub shard: usize,
    /// Every attempt made, in order.
    pub attempts: Vec<Attempt>,
}

/// Why a scatter-gather pass failed.
#[derive(Debug)]
pub enum FanoutError {
    /// The coordinator has an empty worker table.
    NoWorkers,
    /// One or more shards stayed unserved after retries.
    ShardsFailed {
        /// The unserved shards with their attempt logs.
        failures: Vec<ShardFailure>,
        /// How many shards *were* gathered successfully.
        gathered: usize,
    },
}

impl std::fmt::Display for FanoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FanoutError::NoWorkers => write!(f, "no workers configured"),
            FanoutError::ShardsFailed { failures, gathered } => write!(
                f,
                "{} shard(s) unserved after retries ({gathered} gathered)",
                failures.len()
            ),
        }
    }
}

/// The coordinator's view of a distributed dataset.
#[derive(Debug)]
pub struct Coordinator {
    dataset: String,
    manifest: ShardManifest,
    workers: Vec<WorkerEntry>,
    deadline: Duration,
    retries: usize,
}

impl Coordinator {
    /// Boots a coordinator for `dataset`: reads (and fully validates) the
    /// manifest — the coordinator never touches the shard files themselves —
    /// and records the worker table.
    pub fn boot(
        dataset: impl Into<String>,
        manifest_path: &std::path::Path,
        workers: Vec<String>,
        deadline: Duration,
        retries: usize,
    ) -> Result<Self, String> {
        let manifest = read_manifest_file(manifest_path)
            .map_err(|error| format!("reading shard manifest: {error}"))?;
        Ok(Self {
            dataset: dataset.into(),
            manifest,
            workers: workers
                .into_iter()
                .map(|addr| WorkerEntry {
                    addr,
                    healthy: AtomicBool::new(true),
                })
                .collect(),
            deadline,
            retries,
        })
    }

    /// The distributed dataset's name.
    pub fn dataset(&self) -> &str {
        &self.dataset
    }

    /// The number of shards in the family.
    pub fn num_shards(&self) -> usize {
        self.manifest.num_shards()
    }

    /// The node count recorded in the manifest.
    pub fn num_nodes(&self) -> usize {
        self.manifest.num_nodes as usize
    }

    /// The hyperedge count recorded in the manifest.
    pub fn num_edges(&self) -> usize {
        self.manifest.num_edges as usize
    }

    /// The per-request deadline, in milliseconds.
    pub fn deadline_ms(&self) -> u64 {
        self.deadline.as_millis() as u64
    }

    /// The per-shard retry budget (attempts beyond the first).
    pub fn retries(&self) -> usize {
        self.retries
    }

    /// Probes every worker's `/v1/healthz`, updating the health table, and
    /// returns `(addr, healthy)` per worker.
    pub fn probe_workers(&self) -> Vec<(String, bool)> {
        let deadline = self.deadline.min(Duration::from_secs(1));
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .workers
                .iter()
                .map(|entry| {
                    scope.spawn(move || {
                        let mut client = HttpClient::new(entry.addr.clone());
                        let healthy = client
                            .get("/v1/healthz", deadline)
                            .map(|response| response.status == 200)
                            .unwrap_or(false);
                        entry.healthy.store(healthy, Ordering::Relaxed);
                        (entry.addr.clone(), healthy)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| match handle.join() {
                    Ok(pair) => pair,
                    Err(_) => ("<probe panicked>".to_string(), false),
                })
                .collect()
        })
    }

    /// Scatters one `count-shard` request per shard across the worker set
    /// and gathers the partials, sorted by shard index.
    ///
    /// Shards are round-robined over the currently-healthy workers (all
    /// workers, if none are marked healthy — a stale health table must not
    /// fail a query that could succeed). Each worker's shards are served
    /// sequentially over one keep-alive connection; workers run in parallel.
    /// A failed attempt marks the worker unhealthy and sends the shard —
    /// and the worker's remaining shards — to the retry pass, which walks
    /// the *other* workers until the shard is served or its attempt budget
    /// (`1 + retries`) is spent.
    pub fn scatter_gather(&self, threads: usize) -> Result<Vec<ShardPartial>, FanoutError> {
        if self.workers.is_empty() {
            return Err(FanoutError::NoWorkers);
        }
        let num_shards = self.manifest.num_shards();

        // Assign shards round-robin over healthy workers.
        let mut eligible: Vec<usize> = (0..self.workers.len())
            .filter(|&w| {
                self.workers
                    .get(w)
                    .is_some_and(|entry| entry.healthy.load(Ordering::Relaxed))
            })
            .collect();
        if eligible.is_empty() {
            eligible = (0..self.workers.len()).collect();
        }
        let mut assignments: Vec<Vec<usize>> = vec![Vec::new(); self.workers.len()];
        for shard in 0..num_shards {
            if let Some(slot) = eligible
                .get(shard % eligible.len())
                .and_then(|&w| assignments.get_mut(w))
            {
                slot.push(shard);
            }
        }

        // Scatter: one thread per worker with an assignment, each serving
        // its shard list sequentially over one keep-alive connection.
        let mut gathered: Vec<Option<ShardPartial>> = Vec::new();
        gathered.resize_with(num_shards, || None);
        let mut pending: Vec<(usize, Vec<Attempt>)> = Vec::new();
        let outcomes = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .workers
                .iter()
                .zip(assignments.iter())
                .filter(|(_, shards)| !shards.is_empty())
                .map(|(entry, shards)| {
                    scope.spawn(move || {
                        let mut served: Vec<(usize, ShardPartial)> = Vec::new();
                        let mut failed: Vec<(usize, Attempt)> = Vec::new();
                        let mut client = HttpClient::new(entry.addr.clone());
                        let mut broken = false;
                        for &shard in shards {
                            if broken {
                                // Don't burn the deadline shard-by-shard on
                                // a worker that already failed: queue the
                                // rest for reassignment immediately.
                                failed.push((
                                    shard,
                                    Attempt {
                                        worker: entry.addr.clone(),
                                        error: "skipped: worker failed earlier in this scatter"
                                            .to_string(),
                                    },
                                ));
                                continue;
                            }
                            match self.request_shard(&mut client, shard, threads) {
                                Ok(partial) => served.push((shard, partial)),
                                Err(error) => {
                                    entry.healthy.store(false, Ordering::Relaxed);
                                    broken = true;
                                    failed.push((
                                        shard,
                                        Attempt {
                                            worker: entry.addr.clone(),
                                            error,
                                        },
                                    ));
                                }
                            }
                        }
                        (served, failed)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().unwrap_or_default())
                .collect::<Vec<_>>()
        });
        for (served, failed) in outcomes {
            for (shard, partial) in served {
                if let Some(slot) = gathered.get_mut(shard) {
                    *slot = Some(partial);
                }
            }
            for (shard, attempt) in failed {
                pending.push((shard, vec![attempt]));
            }
        }

        // Retry pass: walk the other workers for each unserved shard, newest
        // health knowledge first, within the per-shard attempt budget.
        let mut failures: Vec<ShardFailure> = Vec::new();
        for (shard, mut attempts) in pending {
            let budget = 1 + self.retries;
            let mut served = None;
            for entry in self
                .workers
                .iter()
                .filter(|entry| entry.healthy.load(Ordering::Relaxed))
                .chain(
                    self.workers
                        .iter()
                        .filter(|entry| !entry.healthy.load(Ordering::Relaxed)),
                )
            {
                if attempts.len() >= budget {
                    break;
                }
                if attempts.iter().any(|attempt| attempt.worker == entry.addr) {
                    continue;
                }
                let mut client = HttpClient::new(entry.addr.clone());
                match self.request_shard(&mut client, shard, threads) {
                    Ok(partial) => {
                        entry.healthy.store(true, Ordering::Relaxed);
                        served = Some(partial);
                        break;
                    }
                    Err(error) => {
                        entry.healthy.store(false, Ordering::Relaxed);
                        attempts.push(Attempt {
                            worker: entry.addr.clone(),
                            error,
                        });
                    }
                }
            }
            match served {
                Some(partial) => {
                    if let Some(slot) = gathered.get_mut(shard) {
                        *slot = Some(partial);
                    }
                }
                None => failures.push(ShardFailure { shard, attempts }),
            }
        }

        if failures.is_empty() {
            // `gathered` is indexed by shard, so this collect is already the
            // fixed 0..K-1 merge order the bit-identity argument needs.
            let partials: Vec<ShardPartial> = gathered.into_iter().flatten().collect();
            if partials.len() == num_shards {
                return Ok(partials);
            }
            // Unreachable in practice: every shard is either gathered or in
            // `failures`. Surface it as a failure rather than merging short.
            let missing: Vec<ShardFailure> = (0..num_shards)
                .filter(|&shard| partials.iter().all(|partial| partial.shard != shard))
                .map(|shard| ShardFailure {
                    shard,
                    attempts: Vec::new(),
                })
                .collect();
            return Err(FanoutError::ShardsFailed {
                gathered: partials.len(),
                failures: missing,
            });
        }
        failures.sort_by_key(|failure| failure.shard);
        let gathered_count = gathered.iter().filter(|slot| slot.is_some()).count();
        Err(FanoutError::ShardsFailed {
            failures,
            gathered: gathered_count,
        })
    }

    /// One `count-shard` exchange with one worker, validated against the
    /// manifest. Returns a human-readable error string for the attempt log.
    fn request_shard(
        &self,
        client: &mut HttpClient,
        shard: usize,
        threads: usize,
    ) -> Result<ShardPartial, String> {
        let body = JsonValue::Object(vec![
            (
                "dataset".to_string(),
                JsonValue::String(self.dataset.clone()),
            ),
            ("shard".to_string(), JsonValue::Number(shard as f64)),
            ("threads".to_string(), JsonValue::Number(threads as f64)),
        ])
        .render();
        let response = client
            .post("/v1/internal/count-shard", &body, self.deadline)
            .map_err(|error| error.to_string())?;
        if response.status != 200 {
            return Err(format!(
                "worker answered {}: {}",
                response.status,
                response.body.chars().take(200).collect::<String>()
            ));
        }
        let parsed = mochy_json::parse(&response.body)
            .map_err(|error| format!("unparseable worker response: {error}"))?;
        let partial = ShardPartial::from_json(&parsed)
            .map_err(|error| format!("invalid shard partial: {error}"))?;
        if partial.shard != shard {
            return Err(format!(
                "worker returned shard {} for a shard-{shard} request",
                partial.shard
            ));
        }
        let expected = self
            .manifest
            .boundaries()
            .get(shard)
            .cloned()
            .ok_or_else(|| format!("shard {shard} outside the manifest"))?;
        if partial.edges != expected {
            return Err(format!(
                "worker's edge span {:?} disagrees with the manifest's {expected:?}",
                partial.edges
            ));
        }
        Ok(partial)
    }
}
