//! The TCP accept loop: bounded dispatch onto the shared worker pool.
//!
//! The accept loop does exactly two cheap things per connection — accept and
//! `try_execute` onto a [`WorkerPool`] — so it can never be wedged by a slow
//! request or a slow client. Request reading, JSON handling, and counting
//! all happen on the pool's resident workers; a worker owns its connection
//! for the whole keep-alive session, serving pipelined requests back to back
//! until the client closes, the per-connection request cap is reached, or
//! the idle deadline expires. When every worker is busy and the bounded
//! queue is full, the loop answers `503 Service Unavailable` inline (with a
//! tiny JSON body and `connection: close`) and moves on. Overload degrades
//! service, it never stops it.
//!
//! Shutdown is cooperative: `POST /shutdown` (or [`Server::shutdown`]) sets
//! a flag and pokes the listener with a wake connection so the blocking
//! `accept` returns. Queued requests drain before the workers exit, and
//! persistent connections close after their in-flight exchange.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mochy_hypergraph::parallel::{PoolSaturated, WorkerPool};

use crate::api::{self, ApiContext, QueryCache, Role};
use crate::http::{self, Persistence, RequestError};
use crate::registry::Registry;

/// Upper bound on bytes drained from an overloaded connection before the
/// inline 503 is written (see the overload arm of the accept loop).
const MAX_OVERLOAD_DRAIN_BYTES: usize = 64 * 1024;

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Resident request workers. Each busy worker owns one keep-alive
    /// connection, so this is also the concurrent-connection ceiling.
    pub workers: usize,
    /// Bounded queue of accepted-but-unclaimed connections beyond the busy
    /// workers; when full, new connections get 503.
    pub queue_depth: usize,
    /// Rendered-response cache capacity (0 disables caching).
    pub cache_capacity: usize,
    /// Ceiling on the per-query `threads` parameter.
    pub max_threads: usize,
    /// Bound on each exchange's I/O: the total time allowed to read one
    /// request (a deadline, so slow-drip clients cannot pin a worker) and
    /// the per-call write timeout for the response.
    pub io_timeout: Duration,
    /// Maximum accepted request-body size, in bytes.
    pub max_body_bytes: usize,
    /// Requests served on one connection before the server closes it —
    /// bounds how long a single client can monopolize a resident worker.
    pub max_requests_per_connection: usize,
    /// How long a persistent connection may sit idle between requests
    /// before the server closes it silently.
    pub idle_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 16,
            cache_capacity: 64,
            max_threads: 4,
            io_timeout: Duration::from_secs(10),
            max_body_bytes: 1 << 20,
            max_requests_per_connection: 128,
            idle_timeout: Duration::from_secs(5),
        }
    }
}

/// The per-connection limits a worker enforces, split out of
/// [`ServerConfig`] so a connection job captures one small `Copy` value.
#[derive(Debug, Clone, Copy)]
struct ConnectionLimits {
    max_body_bytes: usize,
    request_timeout: Duration,
    idle_timeout: Duration,
    max_requests: usize,
}

impl ConnectionLimits {
    fn from_config(config: &ServerConfig) -> Self {
        Self {
            max_body_bytes: config.max_body_bytes,
            request_timeout: config.io_timeout,
            idle_timeout: config.idle_timeout,
            max_requests: config.max_requests_per_connection.max(1),
        }
    }
}

/// A running `mochy-serve` instance.
#[derive(Debug)]
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener, spins up the worker pool, and starts accepting
    /// as a standalone (non-distributed) instance.
    pub fn start(config: ServerConfig, registry: Registry) -> std::io::Result<Server> {
        Server::start_with_role(config, registry, Role::Standalone)
    }

    /// Like [`Server::start`], but with an explicit distributed [`Role`]:
    /// a shard worker ([`Role::Worker`]) or a fan-out coordinator
    /// ([`Role::Coordinator`]).
    pub fn start_with_role(
        config: ServerConfig,
        registry: Registry,
        role: Role,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let context = Arc::new(ApiContext {
            registry,
            cache: QueryCache::new(config.cache_capacity),
            max_threads: config.max_threads.max(1),
            num_workers: config.workers.max(1),
            queue_depth: config.queue_depth,
            max_requests_per_connection: config.max_requests_per_connection.max(1),
            idle_timeout_ms: u64::try_from(config.idle_timeout.as_millis()).unwrap_or(u64::MAX),
            started: Instant::now(),
            role,
        });
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::spawn(move || {
            accept_loop(&listener, local_addr, &config, &context, &accept_shutdown);
        });
        Ok(Server {
            local_addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests shutdown and wakes the accept loop. Idempotent; does not
    /// wait — follow with [`Server::wait`] (or drop the server) to join.
    pub fn shutdown(&self) {
        request_shutdown(&self.shutdown, self.local_addr);
    }

    /// Blocks until the accept loop exits (via [`Server::shutdown`] or
    /// `POST /shutdown`), then joins it. The worker pool drains its queued
    /// requests before this returns.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            request_shutdown(&self.shutdown, self.local_addr);
            let _ = handle.join();
        }
    }
}

fn request_shutdown(shutdown: &AtomicBool, addr: SocketAddr) {
    shutdown.store(true, Ordering::SeqCst);
    // Wake the blocking accept; any connection attempt does.
    let _ = TcpStream::connect(addr);
}

fn accept_loop(
    listener: &TcpListener,
    local_addr: SocketAddr,
    config: &ServerConfig,
    context: &Arc<ApiContext>,
    shutdown: &Arc<AtomicBool>,
) {
    // Dropped at the end of this function: joins the workers only after the
    // queued connections have been served.
    let pool = WorkerPool::new(config.workers, config.queue_depth);
    let limits = ConnectionLimits::from_config(config);
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Transient accept failures (e.g. fd exhaustion) must not
                // hot-spin the loop.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            break; // the stream (possibly the wake connection) just closes
        }
        let _ = stream.set_write_timeout(Some(config.io_timeout));
        let _ = stream.set_nodelay(true);

        // Keep a handle for the overload answer: the job owns the stream, so
        // a rejected submission hands back an opaque closure, not the socket.
        let overload_handle = stream.try_clone();
        let job_context = Arc::clone(context);
        let job_shutdown = Arc::clone(shutdown);
        let submission = pool.try_execute(move || {
            let mut stream = stream;
            handle_connection(&mut stream, &job_context, &job_shutdown, local_addr, limits);
        });
        match submission {
            Ok(()) => {}
            Err(PoolSaturated(job)) => {
                // Backpressure: drop the queued job (closing its socket
                // clone) and tell the client we are overloaded, inline —
                // this path must stay cheap enough to never wedge accept.
                drop(job);
                if let Ok(mut stream) = overload_handle {
                    // Drain whatever request bytes already arrived, without
                    // blocking: closing a socket with unread received data
                    // turns the close into a TCP reset, which can discard
                    // the 503 before the client reads it. The drain is
                    // capped — a client streaming an endless body at line
                    // rate must not pin the accept thread here.
                    use std::io::Read;
                    let _ = stream.set_nonblocking(true);
                    let mut scratch = [0u8; 4096];
                    let mut drained = 0usize;
                    while drained < MAX_OVERLOAD_DRAIN_BYTES {
                        match stream.read(&mut scratch) {
                            Ok(n) if n > 0 => drained += n,
                            _ => break,
                        }
                    }
                    let _ = stream.set_nonblocking(false);
                    let _ = http::write_response(
                        &mut stream,
                        503,
                        &[("retry-after", "1")],
                        &api::error_body(503, "overloaded", "server overloaded; retry shortly"),
                        Persistence::Close,
                    );
                }
            }
        }
    }
}

/// One keep-alive session, entirely on a worker thread: exchanges loop until
/// the client closes or asks to (`Connection: close`), the request cap is
/// reached, the idle deadline expires, or the server is shutting down.
fn handle_connection(
    stream: &mut TcpStream,
    context: &ApiContext,
    shutdown: &AtomicBool,
    local_addr: SocketAddr,
    limits: ConnectionLimits,
) {
    let mut rolling = http::ConnectionBuffer::new();
    let mut served = 0usize;
    loop {
        // `request_timeout` bounds the whole request read (not just each
        // read call — a slow-drip client must not pin a resident worker),
        // while `idle_timeout` bounds the silent wait *between* requests.
        let request = match http::read_request(
            stream,
            &mut rolling,
            limits.max_body_bytes,
            limits.idle_timeout,
            limits.request_timeout,
        ) {
            Ok(request) => request,
            // The normal ends of a keep-alive session: the peer hung up
            // between requests, or went idle past the deadline. Nothing to
            // answer.
            Err(RequestError::Closed) | Err(RequestError::IdleTimeout) => return,
            Err(error) => {
                let (status, kind) = match &error {
                    RequestError::BadRequest(_) => (400, "bad-request"),
                    RequestError::PayloadTooLarge(_) => (413, "payload-too-large"),
                    _ => (408, "timeout"),
                };
                // Framing is no longer trustworthy after a parse failure, so
                // the error response always closes the connection.
                let _ = http::write_response(
                    stream,
                    status,
                    &[],
                    &api::error_body(status, kind, &error.to_string()),
                    Persistence::Close,
                );
                return;
            }
        };
        served = served.saturating_add(1);
        let response = api::handle(context, &request);
        let closing = !request.keep_alive
            || response.shutdown
            || served >= limits.max_requests
            || shutdown.load(Ordering::SeqCst);
        let persistence = if closing {
            Persistence::Close
        } else {
            Persistence::KeepAlive
        };
        let mut headers: Vec<(&str, &str)> = Vec::new();
        if let Some(state) = response.cache_state {
            headers.push(("x-mochy-cache", state.as_str()));
        }
        if response.deprecated {
            // The route was reached through a pre-versioning alias; the body
            // is byte-identical to the `/v1` route, only this header differs.
            headers.push(("deprecation", "true"));
        }
        let written = http::write_response(
            stream,
            response.status,
            &headers,
            &response.body,
            persistence,
        );
        if response.shutdown {
            request_shutdown(shutdown, local_addr);
        }
        if closing || written.is_err() {
            return;
        }
    }
}
