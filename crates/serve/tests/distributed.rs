//! Distributed scatter-gather, end to end over real TCP: a coordinator and
//! three shard workers on ephemeral ports, exercising bit-identity against
//! the unsharded count, retry after a worker dies mid-sequence,
//! deadline-triggered reassignment around a stalling worker, the uniform
//! fan-out error envelope, and byte-identical cache hits through the
//! coordinator.

use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use mochy_hypergraph::{manifest_file_path, write_shards, Hypergraph, HypergraphBuilder};
use mochy_json::{self as json, JsonValue};
use mochy_serve::api::Role;
use mochy_serve::client::HttpClient;
use mochy_serve::coordinator::Coordinator;
use mochy_serve::registry::Registry;
use mochy_serve::server::{Server, ServerConfig};
use mochy_serve::worker::WorkerState;

const DEADLINE: Duration = Duration::from_secs(30);
const NUM_SHARDS: usize = 3;

/// A hypergraph big enough that every shard holds edges and motifs cross
/// shard boundaries.
fn dataset() -> Hypergraph {
    let mut builder = HypergraphBuilder::new();
    for e in 0u32..60 {
        let base = e % 13;
        builder.add_edge(vec![base, base + 2, (base * 5) % 17, (e / 3) % 9 + 1]);
    }
    builder.build().expect("dataset builds")
}

/// Writes the shard family to a unique temp stem; returns (stem, manifest).
fn write_family(tag: &str) -> (PathBuf, PathBuf) {
    let stem = std::env::temp_dir().join(format!("mochy-distributed-{tag}-{}", std::process::id()));
    write_shards(&dataset(), &stem, NUM_SHARDS).expect("write shard family");
    let manifest = manifest_file_path(&stem);
    (stem, manifest)
}

fn cleanup_family(stem: &Path, manifest: &Path) {
    let _ = std::fs::remove_file(manifest);
    for shard in 0..NUM_SHARDS {
        let _ = std::fs::remove_file(mochy_hypergraph::shard_file_path(stem, shard));
    }
}

fn quiet_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_depth: 8,
        ..ServerConfig::default()
    }
}

fn boot_worker(manifest: &Path, shard: usize) -> Server {
    let state = WorkerState::boot("dist", manifest, shard).expect("boot worker state");
    Server::start_with_role(
        quiet_config(),
        Registry::new(),
        Role::Worker(Arc::new(state)),
    )
    .expect("bind worker")
}

fn boot_coordinator(
    manifest: &Path,
    peers: Vec<String>,
    deadline: Duration,
    retries: usize,
) -> Server {
    let coordinator =
        Coordinator::boot("dist", manifest, peers, deadline, retries).expect("boot coordinator");
    Server::start_with_role(
        quiet_config(),
        Registry::new(),
        Role::Coordinator(Arc::new(coordinator)),
    )
    .expect("bind coordinator")
}

/// The fields of a count body that define the answer (excludes topology
/// fields like `shards` that legitimately differ between a standalone
/// server and the coordinator).
fn count_fingerprint(body: &str) -> (String, String, String) {
    let parsed = json::parse(body).expect("count body parses");
    let field = |name: &str| parsed.get(name).expect(name).render();
    (field("counts"), field("total"), field("num_hyperwedges"))
}

#[test]
fn coordinator_counts_are_bit_identical_to_unsharded() {
    let (stem, manifest) = write_family("identity");
    let workers: Vec<Server> = (0..NUM_SHARDS).map(|s| boot_worker(&manifest, s)).collect();
    let peers: Vec<String> = workers.iter().map(|w| w.local_addr().to_string()).collect();
    let coordinator = boot_coordinator(&manifest, peers, DEADLINE, 2);

    // Reference: the same hypergraph served unsharded by a standalone server.
    let registry = Registry::new();
    registry.insert("dist", dataset());
    let standalone = Server::start(quiet_config(), registry).expect("bind standalone");

    let query = r#"{"dataset": "dist", "method": "mochy-e"}"#;
    let mut via_coordinator = HttpClient::new(coordinator.local_addr().to_string());
    let distributed = via_coordinator
        .post("/v1/count", query, DEADLINE)
        .expect("distributed count");
    assert_eq!(distributed.status, 200, "{}", distributed.body);

    let mut direct = HttpClient::new(standalone.local_addr().to_string());
    let unsharded = direct
        .post("/v1/count", query, DEADLINE)
        .expect("unsharded count");
    assert_eq!(unsharded.status, 200, "{}", unsharded.body);

    assert_eq!(
        count_fingerprint(&distributed.body),
        count_fingerprint(&unsharded.body),
        "distributed counts must be bit-identical to the unsharded run"
    );

    // The distributed body reports the family's topology.
    let parsed = json::parse(&distributed.body).expect("body parses");
    assert_eq!(parsed.get("shards").and_then(JsonValue::as_u64), Some(3));

    // Cache hit through the coordinator: byte-identical body, hit header.
    let repeat = via_coordinator
        .post("/v1/count", query, DEADLINE)
        .expect("repeat count");
    assert_eq!(repeat.header("x-mochy-cache"), Some("hit"));
    assert_eq!(
        repeat.body, distributed.body,
        "cache hit must be byte-identical"
    );

    // The coordinator's healthz names the role and the worker table.
    let health = via_coordinator
        .get("/v1/healthz", DEADLINE)
        .expect("healthz");
    let health_body = json::parse(&health.body).expect("healthz parses");
    assert_eq!(
        health_body.get("role").and_then(JsonValue::as_str),
        Some("coordinator")
    );
    let fanout = health_body.get("fanout").expect("fanout section");
    assert_eq!(
        fanout.get("num_shards").and_then(JsonValue::as_u64),
        Some(3)
    );

    // And a worker's healthz reports its shard view.
    let mut via_worker = HttpClient::new(
        workers
            .first()
            .expect("have workers")
            .local_addr()
            .to_string(),
    );
    let worker_health = via_worker
        .get("/v1/healthz", DEADLINE)
        .expect("worker healthz");
    let worker_body = json::parse(&worker_health.body).expect("worker healthz parses");
    assert_eq!(
        worker_body.get("role").and_then(JsonValue::as_str),
        Some("worker")
    );

    drop(via_coordinator);
    coordinator.shutdown();
    for worker in &workers {
        worker.shutdown();
    }
    standalone.shutdown();
    cleanup_family(&stem, &manifest);
}

#[test]
fn a_killed_worker_is_retried_on_survivors_bit_identically() {
    let (stem, manifest) = write_family("retry");
    let workers: Vec<Server> = (0..NUM_SHARDS).map(|s| boot_worker(&manifest, s)).collect();
    let peers: Vec<String> = workers.iter().map(|w| w.local_addr().to_string()).collect();
    let coordinator = boot_coordinator(&manifest, peers, DEADLINE, 2);
    let mut client = HttpClient::new(coordinator.local_addr().to_string());

    // Baseline with all workers alive.
    let query = r#"{"dataset": "dist", "method": "mochy-e"}"#;
    let baseline = client.post("/v1/count", query, DEADLINE).expect("baseline");
    assert_eq!(baseline.status, 200, "{}", baseline.body);

    // Kill one worker outright, then issue a *different* query (the first
    // is cached) so the scatter really runs against the degraded set.
    let (killed, survivors) = workers.split_first().expect("have workers");
    killed.shutdown();
    let degraded_query = r#"{"dataset": "dist", "method": "mochy-e", "threads": 2}"#;
    let degraded = client
        .post("/v1/count", degraded_query, DEADLINE)
        .expect("count with a dead worker");
    assert_eq!(
        degraded.status, 200,
        "retry/reassignment must absorb a dead worker: {}",
        degraded.body
    );
    assert_eq!(
        count_fingerprint(&degraded.body),
        count_fingerprint(&baseline.body),
        "reassigned counts must not change a bit"
    );

    coordinator.shutdown();
    for worker in survivors {
        worker.shutdown();
    }
    cleanup_family(&stem, &manifest);
}

#[test]
fn a_stalling_worker_hits_the_deadline_and_is_reassigned() {
    let (stem, manifest) = write_family("stall");
    // A "worker" that accepts connections and then never answers.
    let stall = TcpListener::bind("127.0.0.1:0").expect("bind stall listener");
    let stall_addr = stall.local_addr().expect("stall addr").to_string();
    let stall_thread = std::thread::spawn(move || {
        let mut held = Vec::new();
        // Hold sockets open without responding until the listener is closed
        // from the outside (accept starts failing) or the test ends.
        while let Ok((stream, _)) = stall.accept() {
            let _ = stream.set_nodelay(true);
            held.push(stream);
            if held.len() > 16 {
                break;
            }
        }
    });

    let live = boot_worker(&manifest, 0);
    let peers = vec![stall_addr, live.local_addr().to_string()];
    // Short fan-out deadline so the stalled exchange fails fast.
    let coordinator = boot_coordinator(&manifest, peers, Duration::from_millis(500), 2);
    let mut client = HttpClient::new(coordinator.local_addr().to_string());

    let query = r#"{"dataset": "dist", "method": "mochy-e"}"#;
    let response = client.post("/v1/count", query, DEADLINE).expect("count");
    assert_eq!(
        response.status, 200,
        "the live worker must absorb the stalled worker's shards: {}",
        response.body
    );

    coordinator.shutdown();
    live.shutdown();
    drop(client);
    drop(stall_thread); // detach: it exits when its listener errors at teardown
    cleanup_family(&stem, &manifest);
}

#[test]
fn total_fanout_failure_is_a_structured_502() {
    let (stem, manifest) = write_family("fail");
    // Reserve a port, then close the listener so the address refuses.
    let dead_addr = {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.local_addr().expect("addr").to_string()
    };
    let coordinator = boot_coordinator(
        &manifest,
        vec![dead_addr.clone()],
        Duration::from_millis(500),
        1,
    );
    let mut client = HttpClient::new(coordinator.local_addr().to_string());

    let response = client
        .post(
            "/v1/count",
            r#"{"dataset": "dist", "method": "mochy-e"}"#,
            DEADLINE,
        )
        .expect("exchange completes");
    assert_eq!(response.status, 502, "{}", response.body);
    let parsed = json::parse(&response.body).expect("error body parses");
    let error = parsed.get("error").expect("error envelope");
    assert_eq!(error.get("code").and_then(JsonValue::as_u64), Some(502));
    assert_eq!(
        error.get("kind").and_then(JsonValue::as_str),
        Some("fanout-failed")
    );
    let detail = error.get("detail").expect("partial-failure detail");
    assert_eq!(detail.get("gathered").and_then(JsonValue::as_u64), Some(0));
    let failed = detail.get("failed_shards").expect("failed shards");
    let JsonValue::Array(failed) = failed else {
        panic!("failed_shards must be an array: {failed:?}");
    };
    assert_eq!(failed.len(), NUM_SHARDS);
    let first = failed.first().expect("one failure");
    assert_eq!(first.get("shard").and_then(JsonValue::as_u64), Some(0));
    let attempts = first.get("attempts").expect("attempt log");
    let JsonValue::Array(attempts) = attempts else {
        panic!("attempts must be an array: {attempts:?}");
    };
    let attempt = attempts.first().expect("at least one attempt");
    assert_eq!(
        attempt.get("worker").and_then(JsonValue::as_str),
        Some(dead_addr.as_str())
    );
    assert!(attempt.get("error").is_some());

    coordinator.shutdown();
    cleanup_family(&stem, &manifest);
}

#[test]
fn the_distributed_dataset_rejects_unsupported_query_shapes() {
    let (stem, manifest) = write_family("shapes");
    let worker = boot_worker(&manifest, 0);
    let coordinator = boot_coordinator(
        &manifest,
        vec![worker.local_addr().to_string()],
        DEADLINE,
        1,
    );
    let mut client = HttpClient::new(coordinator.local_addr().to_string());

    for (body, needle) in [
        (
            r#"{"dataset": "dist", "method": "mochy-a", "samples": 10}"#,
            "only the exact method",
        ),
        (
            r#"{"dataset": "dist", "method": "mochy-e", "generalized": 3}"#,
            "not available",
        ),
        (
            r#"{"dataset": "dist", "method": "mochy-e", "shards": 2}"#,
            "sharded by its manifest",
        ),
    ] {
        let response = client.post("/v1/count", body, DEADLINE).expect("exchange");
        assert_eq!(response.status, 400, "{body} → {}", response.body);
        let parsed = json::parse(&response.body).expect("error parses");
        let message = parsed
            .get("error")
            .and_then(|error| error.get("message"))
            .and_then(JsonValue::as_str)
            .unwrap_or_default()
            .to_string();
        assert!(message.contains(needle), "`{message}` lacks `{needle}`");
    }

    coordinator.shutdown();
    worker.shutdown();
    cleanup_family(&stem, &manifest);
}
