//! End-to-end tests: boot the server on an ephemeral port and exercise every
//! route over real TCP, including concurrent readers during a mutation and
//! deterministic overload (503) behaviour.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use mochy_hypergraph::{Hypergraph, HypergraphBuilder};
use mochy_json::{self as json, JsonValue};
use mochy_serve::registry::Registry;
use mochy_serve::server::{Server, ServerConfig};

fn figure2() -> Hypergraph {
    HypergraphBuilder::new()
        .with_edge([0u32, 1, 2])
        .with_edge([0, 3, 1])
        .with_edge([4, 5, 0])
        .with_edge([6, 7, 2])
        .build()
        .unwrap()
}

fn boot(config: ServerConfig) -> Server {
    let registry = Registry::new();
    registry.insert("fig2", figure2());
    Server::start(config, registry).expect("bind ephemeral port")
}

/// A parsed HTTP response: status, `x-mochy-cache` header (if any), body.
struct Response {
    status: u16,
    cache: Option<String>,
    body: String,
}

fn read_response(stream: &mut TcpStream) -> Response {
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("complete response");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in `{head}`"));
    let cache = head.lines().find_map(|line| {
        line.strip_prefix("x-mochy-cache: ")
            .map(|value| value.to_string())
    });
    Response {
        status,
        cache,
        body: body.to_string(),
    }
}

/// One-shot client: explicitly opts out of keep-alive so the `read_to_string`
/// framing (read until the server closes) stays valid.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: mochy\r\nconnection: close\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    read_response(&mut stream)
}

/// Sends one request on an already-open keep-alive connection.
fn send_request(stream: &mut TcpStream, method: &str, path: &str, body: &str) {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: mochy\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    stream.flush().unwrap();
}

/// Reads one `Content-Length`-framed response off a keep-alive connection
/// (cannot wait for EOF — the connection stays open). Bytes of the *next*
/// response (pipelined answers arrive back to back) stay in `carry`. Also
/// returns the `connection:` header value so tests can pin the advertised
/// persistence.
fn read_framed_from(stream: &mut TcpStream, carry: &mut Vec<u8>) -> (Response, String) {
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(position) = carry.windows(4).position(|w| w == b"\r\n\r\n") {
            break position;
        }
        let read = stream.read(&mut chunk).expect("read response head");
        assert!(read > 0, "connection closed before a full response head");
        carry.extend_from_slice(&chunk[..read]);
    };
    let head = String::from_utf8(carry[..head_end].to_vec()).unwrap();
    let content_length: usize = head
        .lines()
        .find_map(|line| line.strip_prefix("content-length: "))
        .expect("content-length header")
        .parse()
        .unwrap();
    let connection = head
        .lines()
        .find_map(|line| line.strip_prefix("connection: "))
        .expect("connection header")
        .to_string();
    let body_start = head_end + 4;
    while carry.len() < body_start + content_length {
        let read = stream.read(&mut chunk).expect("read response body");
        assert!(read > 0, "connection closed mid-body");
        carry.extend_from_slice(&chunk[..read]);
    }
    let status: u16 = head
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in `{head}`"));
    let cache = head.lines().find_map(|line| {
        line.strip_prefix("x-mochy-cache: ")
            .map(|value| value.to_string())
    });
    let body = String::from_utf8(carry[body_start..body_start + content_length].to_vec()).unwrap();
    carry.drain(..body_start + content_length);
    (
        Response {
            status,
            cache,
            body,
        },
        connection,
    )
}

/// [`read_framed_from`] for sequential (non-pipelined) exchanges, where no
/// bytes may be left over between responses.
fn read_framed_response(stream: &mut TcpStream) -> (Response, String) {
    let mut carry = Vec::new();
    let parsed = read_framed_from(stream, &mut carry);
    assert!(
        carry.is_empty(),
        "server sent bytes beyond the framed response"
    );
    parsed
}

/// True once the peer has closed: a read returning 0 within `patience`.
fn closed_by_server(stream: &mut TcpStream, patience: Duration) -> bool {
    stream.set_read_timeout(Some(patience)).unwrap();
    let mut probe = [0u8; 64];
    matches!(stream.read(&mut probe), Ok(0))
}

#[test]
fn all_routes_answer_over_tcp() {
    let server = boot(ServerConfig::default());
    let addr = server.local_addr();

    let health = request(addr, "GET", "/healthz", "");
    assert_eq!(health.status, 200, "{}", health.body);
    let doc = json::parse(&health.body).unwrap();
    assert_eq!(doc.get("status").and_then(JsonValue::as_str), Some("ok"));
    assert_eq!(doc.get("datasets").and_then(JsonValue::as_f64), Some(1.0));

    let listing = request(addr, "GET", "/datasets", "");
    let doc = json::parse(&listing.body).unwrap();
    let datasets = doc.get("datasets").unwrap().as_array().unwrap();
    assert_eq!(datasets.len(), 1);
    assert_eq!(
        datasets[0].get("name").and_then(JsonValue::as_str),
        Some("fig2")
    );
    assert_eq!(
        datasets[0].get("num_edges").and_then(JsonValue::as_f64),
        Some(4.0)
    );

    let count = request(addr, "POST", "/count", r#"{"dataset": "fig2"}"#);
    assert_eq!(count.status, 200, "{}", count.body);
    let doc = json::parse(&count.body).unwrap();
    assert_eq!(doc.get("total").and_then(JsonValue::as_f64), Some(3.0));
    assert_eq!(
        doc.get("counts").unwrap().as_array().unwrap().len(),
        26,
        "26 h-motif slots"
    );

    // A sampling method with an explicit seed is deterministic end to end.
    let sampled = r#"{"dataset": "fig2", "method": "mochy-a+", "samples": 50, "seed": 7}"#;
    let first = request(addr, "POST", "/count", sampled);
    assert_eq!(first.status, 200, "{}", first.body);
    let doc = json::parse(&first.body).unwrap();
    assert_eq!(
        doc.get("samples_drawn").and_then(JsonValue::as_f64),
        Some(50.0)
    );

    // Generalized ride-along: k = 4 reports the 1 853-motif catalog.
    let general = request(
        addr,
        "POST",
        "/count",
        r#"{"dataset": "fig2", "generalized": 4}"#,
    );
    let doc = json::parse(&general.body).unwrap();
    let general = doc.get("generalized").unwrap();
    assert_eq!(general.get("k").and_then(JsonValue::as_f64), Some(4.0));
    assert_eq!(
        general.get("num_motifs").and_then(JsonValue::as_f64),
        Some(1853.0)
    );

    let profile = request(
        addr,
        "POST",
        "/profile",
        r#"{"dataset": "fig2", "randomizations": 2}"#,
    );
    assert_eq!(profile.status, 200, "{}", profile.body);
    let doc = json::parse(&profile.body).unwrap();
    assert_eq!(doc.get("cp").unwrap().as_array().unwrap().len(), 26);

    // Errors surface as JSON, not dropped connections.
    let missing = request(addr, "POST", "/count", r#"{"dataset": "nope"}"#);
    assert_eq!(missing.status, 404);
    assert!(missing.body.contains("unknown dataset"));
    let bad = request(addr, "POST", "/count", "{not json");
    assert_eq!(bad.status, 400);
    let lost = request(addr, "GET", "/lost", "");
    assert_eq!(lost.status, 404);

    server.shutdown();
    server.wait();
}

#[test]
fn snapshot_upload_ingests_a_live_dataset_over_tcp() {
    let server = boot(ServerConfig::default());
    let addr = server.local_addr();

    // Upload a second hypergraph as a base64 .mochy snapshot.
    let mut snapshot_bytes = Vec::new();
    mochy_hypergraph::snapshot::write_snapshot(&figure2(), &mut snapshot_bytes).unwrap();
    let body = format!(
        r#"{{"name": "uploaded.v1", "snapshot": "{}"}}"#,
        mochy_serve::b64::encode(&snapshot_bytes)
    );
    let created = request(addr, "POST", "/datasets", &body);
    assert_eq!(created.status, 201, "{}", created.body);
    let doc = json::parse(&created.body).unwrap();
    assert_eq!(doc.get("num_edges").and_then(JsonValue::as_f64), Some(4.0));

    // It lists, counts, and mutates like any boot-time dataset.
    let listing = request(addr, "GET", "/datasets", "");
    assert!(listing.body.contains("uploaded.v1"), "{}", listing.body);
    let counted = request(addr, "POST", "/count", r#"{"dataset": "uploaded.v1"}"#);
    assert_eq!(counted.status, 200, "{}", counted.body);
    let doc = json::parse(&counted.body).unwrap();
    assert_eq!(doc.get("total").and_then(JsonValue::as_f64), Some(3.0));
    let mutated = request(
        addr,
        "POST",
        "/mutate",
        r#"{"dataset": "uploaded.v1", "insert": [[1, 4, 6]], "remove": []}"#,
    );
    assert_eq!(mutated.status, 200, "{}", mutated.body);

    // A duplicate upload conflicts; a corrupted payload is a 400 with the
    // typed decoder error — and neither disturbed the live dataset.
    let conflict = request(addr, "POST", "/datasets", &body);
    assert_eq!(conflict.status, 409, "{}", conflict.body);
    // Flip a payload byte past the 40-byte header so the checksum (not the
    // header length check) is what rejects it.
    let mut corrupted = snapshot_bytes.clone();
    corrupted[48] ^= 0x40;
    let bad_body = format!(
        r#"{{"name": "corrupt", "snapshot": "{}"}}"#,
        mochy_serve::b64::encode(&corrupted)
    );
    let rejected = request(addr, "POST", "/datasets", &bad_body);
    assert_eq!(rejected.status, 400, "{}", rejected.body);
    assert!(rejected.body.contains("checksum"), "{}", rejected.body);
    let health = request(addr, "GET", "/healthz", "");
    let doc = json::parse(&health.body).unwrap();
    assert_eq!(doc.get("datasets").and_then(JsonValue::as_f64), Some(2.0));
}

#[test]
fn cached_and_uncached_responses_are_byte_identical() {
    let server = boot(ServerConfig::default());
    let addr = server.local_addr();
    let body = r#"{"dataset": "fig2", "method": "mochy-a+", "samples": 40, "seed": 3}"#;

    let uncached = request(addr, "POST", "/count", body);
    assert_eq!(uncached.cache.as_deref(), Some("miss"));
    let cached = request(addr, "POST", "/count", body);
    assert_eq!(cached.cache.as_deref(), Some("hit"));
    assert_eq!(
        uncached.body, cached.body,
        "cache must return identical bytes"
    );

    // Profiles are cached the same way.
    let body = r#"{"dataset": "fig2", "randomizations": 2, "seed": 5}"#;
    let uncached = request(addr, "POST", "/profile", body);
    assert_eq!(uncached.cache.as_deref(), Some("miss"));
    let cached = request(addr, "POST", "/profile", body);
    assert_eq!(cached.cache.as_deref(), Some("hit"));
    assert_eq!(uncached.body, cached.body);
}

#[test]
fn concurrent_readers_observe_consistent_snapshots_during_mutation() {
    let server = boot(ServerConfig {
        workers: 6,
        queue_depth: 64,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let count_body = r#"{"dataset": "fig2"}"#;

    // Pin the two legal response bodies: generation 0 before the mutation…
    let before = request(addr, "POST", "/count", count_body).body;
    let doc = json::parse(&before).unwrap();
    assert_eq!(doc.get("generation").and_then(JsonValue::as_f64), Some(0.0));

    // …start N concurrent readers hammering /count…
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut bodies = Vec::new();
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let response = request(addr, "POST", "/count", r#"{"dataset": "fig2"}"#);
                    assert_eq!(response.status, 200, "{}", response.body);
                    bodies.push(response.body);
                }
                bodies
            })
        })
        .collect();

    // …publish a new snapshot while they run…
    std::thread::sleep(Duration::from_millis(50));
    let mutation = request(
        addr,
        "POST",
        "/mutate",
        r#"{"dataset": "fig2", "insert": [[1, 4, 6], [2, 5]], "remove": [0]}"#,
    );
    assert_eq!(mutation.status, 200, "{}", mutation.body);
    let doc = json::parse(&mutation.body).unwrap();
    assert_eq!(doc.get("generation").and_then(JsonValue::as_f64), Some(1.0));
    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let collected: Vec<Vec<String>> = readers
        .into_iter()
        .map(|handle| handle.join().expect("reader thread"))
        .collect();

    // …and pin the post-mutation body (still generation 1: the readers are
    // done and nothing has mutated since).
    let after = request(addr, "POST", "/count", count_body).body;
    let doc = json::parse(&after).unwrap();
    assert_eq!(doc.get("generation").and_then(JsonValue::as_f64), Some(1.0));
    assert_ne!(before, after);

    // Every concurrent response is byte-identical to exactly one published
    // snapshot's response — never a torn mix of generations.
    let mut saw_before = false;
    let mut saw_after = false;
    for body in collected.into_iter().flatten() {
        if body == before {
            saw_before = true;
        } else if body == after {
            saw_after = true;
        } else {
            panic!("response matches no published snapshot: {body}");
        }
    }
    assert!(saw_before, "no reader observed the pre-mutation snapshot");
    assert!(saw_after, "no reader observed the post-mutation snapshot");

    // The streaming writer's incremental total must equal the from-scratch
    // count of the published snapshot (an empty batch republishes).
    let mutated_total =
        json::parse(&request(addr, "POST", "/mutate", r#"{"dataset": "fig2"}"#).body)
            .unwrap()
            .get("total")
            .and_then(JsonValue::as_f64)
            .unwrap();
    let counted_total = json::parse(&request(addr, "POST", "/count", count_body).body)
        .unwrap()
        .get("total")
        .and_then(JsonValue::as_f64)
        .unwrap();
    assert_eq!(mutated_total, counted_total);
}

#[test]
fn overload_returns_503_without_wedging_the_accept_loop() {
    // One worker, one queue slot: a stalled request plus a queued request
    // saturate the pool deterministically.
    let server = boot(ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let body = r#"{"dataset": "fig2"}"#;

    // Connection A: headers plus half the body, then stall — the single
    // worker blocks reading the rest.
    let mut stalled = TcpStream::connect(addr).unwrap();
    stalled
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stalled
        .write_all(
            format!(
                "POST /count HTTP/1.1\r\nhost: mochy\r\nconnection: close\r\ncontent-length: {}\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        )
        .unwrap();
    stalled.write_all(&body.as_bytes()[..5]).unwrap();
    stalled.flush().unwrap();
    std::thread::sleep(Duration::from_millis(200));

    // Connection B: a complete request that parks in the queue slot.
    let mut queued = TcpStream::connect(addr).unwrap();
    queued
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    queued
        .write_all(
            b"GET /healthz HTTP/1.1\r\nhost: mochy\r\nconnection: close\r\ncontent-length: 0\r\n\r\n",
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(200));

    // Connection C: pool saturated — the accept loop answers 503 inline.
    let overloaded = request(addr, "GET", "/healthz", "");
    assert_eq!(overloaded.status, 503, "{}", overloaded.body);
    assert!(
        overloaded.body.contains("overloaded"),
        "{}",
        overloaded.body
    );

    // Unstall A: its request completes normally…
    stalled.write_all(&body.as_bytes()[5..]).unwrap();
    let response = read_response(&mut stalled);
    assert_eq!(response.status, 200, "{}", response.body);
    // …then the queued B is served…
    let response = read_response(&mut queued);
    assert_eq!(response.status, 200, "{}", response.body);
    // …and the accept loop takes fresh requests as if nothing happened.
    let fresh = request(addr, "POST", "/count", body);
    assert_eq!(fresh.status, 200, "{}", fresh.body);
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let server = boot(ServerConfig::default());
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    // Three sequential exchanges on one connection; the second /count is a
    // byte-identical cache hit, proving the session reaches the same API
    // layer as one-shot connections.
    send_request(&mut stream, "GET", "/healthz", "");
    let (health, connection) = read_framed_response(&mut stream);
    assert_eq!(health.status, 200, "{}", health.body);
    assert_eq!(connection, "keep-alive");

    let count_body = r#"{"dataset": "fig2", "seed": 11}"#;
    send_request(&mut stream, "POST", "/count", count_body);
    let (first, connection) = read_framed_response(&mut stream);
    assert_eq!(first.status, 200, "{}", first.body);
    assert_eq!(first.cache.as_deref(), Some("miss"));
    assert_eq!(connection, "keep-alive");
    send_request(&mut stream, "POST", "/count", count_body);
    let (second, _) = read_framed_response(&mut stream);
    assert_eq!(second.cache.as_deref(), Some("hit"));
    assert_eq!(first.body, second.body);

    // `Connection: close` mid-stream is honored: the response advertises
    // close and the server hangs up afterwards.
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nhost: mochy\r\nconnection: close\r\ncontent-length: 0\r\n\r\n")
        .unwrap();
    let (last, connection) = read_framed_response(&mut stream);
    assert_eq!(last.status, 200);
    assert_eq!(connection, "close");
    assert!(
        closed_by_server(&mut stream, Duration::from_secs(5)),
        "server must close after honoring Connection: close"
    );
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let server = boot(ServerConfig::default());
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    // Two requests in a single write: both must be answered, in order, off
    // the rolling buffer.
    let body = r#"{"dataset": "fig2", "seed": 21}"#;
    let exchange = format!(
        "POST /count HTTP/1.1\r\nhost: mochy\r\ncontent-length: {len}\r\n\r\n{body}\
         POST /count HTTP/1.1\r\nhost: mochy\r\ncontent-length: {len}\r\n\r\n{body}",
        len = body.len()
    );
    stream.write_all(exchange.as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut carry = Vec::new();
    let (first, _) = read_framed_from(&mut stream, &mut carry);
    assert_eq!(first.status, 200, "{}", first.body);
    assert_eq!(first.cache.as_deref(), Some("miss"));
    let (second, _) = read_framed_from(&mut stream, &mut carry);
    assert_eq!(second.status, 200, "{}", second.body);
    assert_eq!(second.cache.as_deref(), Some("hit"));
    assert_eq!(first.body, second.body);
}

#[test]
fn request_cap_closes_the_connection_cleanly() {
    let server = boot(ServerConfig {
        max_requests_per_connection: 2,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();

    send_request(&mut stream, "GET", "/healthz", "");
    let (_, connection) = read_framed_response(&mut stream);
    assert_eq!(connection, "keep-alive", "request 1 of 2 stays open");
    send_request(&mut stream, "GET", "/healthz", "");
    let (response, connection) = read_framed_response(&mut stream);
    assert_eq!(response.status, 200);
    assert_eq!(connection, "close", "the cap response advertises close");
    assert!(
        closed_by_server(&mut stream, Duration::from_secs(5)),
        "server must close once the request cap is reached"
    );

    // The cap frees the worker for other clients; a fresh connection works.
    assert_eq!(request(addr, "GET", "/healthz", "").status, 200);
}

#[test]
fn idle_keep_alive_connections_are_reaped_after_the_deadline() {
    let server = boot(ServerConfig {
        idle_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    send_request(&mut stream, "GET", "/healthz", "");
    let (response, connection) = read_framed_response(&mut stream);
    assert_eq!(response.status, 200);
    assert_eq!(connection, "keep-alive");

    // Send nothing: the idle deadline must close the session silently (no
    // error response bytes), and the server keeps accepting new clients.
    assert!(
        closed_by_server(&mut stream, Duration::from_secs(5)),
        "idle connection must be reaped"
    );
    assert_eq!(request(addr, "GET", "/healthz", "").status, 200);
}

#[test]
fn idle_keepalive_connection_saturates_pool_and_new_clients_get_503() {
    // One worker, one queue slot — and the worker is pinned not by a stalled
    // body but by a *persistent* connection parked between requests. The 503
    // must still be deterministic, advertise close, and clear once the idle
    // deadline reaps the parked session.
    let server = boot(ServerConfig {
        workers: 1,
        queue_depth: 1,
        idle_timeout: Duration::from_millis(600),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    // Connection A: one complete exchange, then park (worker idle-waits).
    let mut parked = TcpStream::connect(addr).unwrap();
    parked
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    send_request(&mut parked, "GET", "/healthz", "");
    let (response, connection) = read_framed_response(&mut parked);
    assert_eq!(response.status, 200);
    assert_eq!(connection, "keep-alive");

    // Connection B: parks in the queue slot.
    let mut queued = TcpStream::connect(addr).unwrap();
    queued
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    queued
        .write_all(
            b"GET /healthz HTTP/1.1\r\nhost: mochy\r\nconnection: close\r\ncontent-length: 0\r\n\r\n",
        )
        .unwrap();
    std::thread::sleep(Duration::from_millis(200));

    // Connection C: pool saturated — inline 503 that closes the connection.
    let mut rejected = TcpStream::connect(addr).unwrap();
    rejected
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    rejected
        .write_all(b"GET /healthz HTTP/1.1\r\nhost: mochy\r\ncontent-length: 0\r\n\r\n")
        .unwrap();
    let mut raw = String::new();
    rejected.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 503 "), "{raw}");
    assert!(raw.contains("connection: close\r\n"), "{raw}");
    assert!(raw.contains("overloaded"), "{raw}");

    // The idle deadline reaps A, freeing the worker for the queued B…
    let response = read_response(&mut queued);
    assert_eq!(response.status, 200, "{}", response.body);
    // …and A observes its silent close.
    assert!(
        closed_by_server(&mut parked, Duration::from_secs(5)),
        "parked connection must be reaped, not answered"
    );
    // The accept loop takes fresh requests as if nothing happened.
    assert_eq!(request(addr, "GET", "/healthz", "").status, 200);
}

#[test]
fn shutdown_route_stops_the_accept_loop_cleanly() {
    let server = boot(ServerConfig::default());
    let addr = server.local_addr();
    assert_eq!(request(addr, "GET", "/healthz", "").status, 200);
    let response = request(addr, "POST", "/shutdown", "");
    assert_eq!(response.status, 200);
    assert!(response.body.contains("shutting-down"));
    server.wait(); // must return: the accept loop observed the flag

    // The listener is gone; connections are refused (allow a few retries
    // for the close to land).
    for attempt in 0..20 {
        match TcpStream::connect(addr) {
            Err(_) => return,
            Ok(_) if attempt == 19 => panic!("listener still accepting after shutdown"),
            Ok(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}
