//! A one-hidden-layer multi-layer perceptron trained with mini-batch SGD.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::Classifier;

/// MLP classifier: `inputs → hidden (ReLU) → 1 (sigmoid)`.
#[derive(Debug, Clone)]
pub struct MlpClassifier {
    hidden_units: usize,
    learning_rate: f64,
    epochs: usize,
    seed: u64,
    // Parameters (empty before fit).
    w1: Vec<Vec<f64>>, // hidden × input
    b1: Vec<f64>,
    w2: Vec<f64>, // hidden
    b2: f64,
}

impl MlpClassifier {
    /// Creates an untrained MLP.
    pub fn new(hidden_units: usize, learning_rate: f64, epochs: usize, seed: u64) -> Self {
        Self {
            hidden_units: hidden_units.max(1),
            learning_rate,
            epochs,
            seed,
            w1: Vec::new(),
            b1: Vec::new(),
            w2: Vec::new(),
            b2: 0.0,
        }
    }

    fn sigmoid(z: f64) -> f64 {
        1.0 / (1.0 + (-z).exp())
    }

    fn forward(&self, features: &[f64]) -> (Vec<f64>, f64) {
        let hidden: Vec<f64> = self
            .w1
            .iter()
            .zip(self.b1.iter())
            .map(|(weights, bias)| {
                let z: f64 = bias
                    + weights
                        .iter()
                        .zip(features.iter())
                        .map(|(w, x)| w * x)
                        .sum::<f64>();
                z.max(0.0) // ReLU
            })
            .collect();
        let output = Self::sigmoid(
            self.b2
                + hidden
                    .iter()
                    .zip(self.w2.iter())
                    .map(|(h, w)| h * w)
                    .sum::<f64>(),
        );
        (hidden, output)
    }
}

impl Classifier for MlpClassifier {
    fn fit(&mut self, x: &[Vec<f64>], y: &[u8]) {
        assert_eq!(x.len(), y.len(), "rows and labels must align");
        if x.is_empty() {
            return;
        }
        let inputs = x[0].len();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let scale = (2.0 / inputs.max(1) as f64).sqrt();
        self.w1 = (0..self.hidden_units)
            .map(|_| (0..inputs).map(|_| rng.gen_range(-scale..scale)).collect())
            .collect();
        self.b1 = vec![0.0; self.hidden_units];
        self.w2 = (0..self.hidden_units)
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        self.b2 = 0.0;

        let n = x.len();
        for _ in 0..self.epochs {
            for _ in 0..n {
                let index = rng.gen_range(0..n);
                let features = &x[index];
                let target = f64::from(y[index]);
                let (hidden, output) = self.forward(features);
                // Output layer gradient (cross-entropy with sigmoid).
                let delta_output = output - target;
                // Hidden layer gradients (ReLU derivative).
                for (h, &activation) in hidden.iter().enumerate().take(self.hidden_units) {
                    let grad_w2 = delta_output * activation;
                    let delta_hidden = if activation > 0.0 {
                        delta_output * self.w2[h]
                    } else {
                        0.0
                    };
                    self.w2[h] -= self.learning_rate * grad_w2;
                    if delta_hidden != 0.0 {
                        for (w, &value) in self.w1[h].iter_mut().zip(features.iter()) {
                            *w -= self.learning_rate * delta_hidden * value;
                        }
                        self.b1[h] -= self.learning_rate * delta_hidden;
                    }
                }
                self.b2 -= self.learning_rate * delta_output;
            }
        }
    }

    fn predict_proba(&self, features: &[f64]) -> f64 {
        if self.w1.is_empty() {
            return 0.5;
        }
        self.forward(features).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn xor_data() -> (Vec<Vec<f64>>, Vec<u8>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                let a = i as f64 / 11.0;
                let b = j as f64 / 11.0;
                x.push(vec![a, b]);
                y.push(u8::from((a > 0.5) != (b > 0.5)));
            }
        }
        (x, y)
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data();
        let mut mlp = MlpClassifier::new(16, 0.1, 400, 3);
        mlp.fit(&x, &y);
        let predictions: Vec<u8> = x.iter().map(|row| mlp.predict(row)).collect();
        assert!(
            accuracy(&y, &predictions) > 0.9,
            "accuracy {}",
            accuracy(&y, &predictions)
        );
    }

    #[test]
    fn untrained_returns_half() {
        let mlp = MlpClassifier::new(4, 0.1, 10, 0);
        assert_eq!(mlp.predict_proba(&[0.2, 0.4]), 0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = xor_data();
        let mut a = MlpClassifier::new(8, 0.1, 50, 11);
        a.fit(&x, &y);
        let mut b = MlpClassifier::new(8, 0.1, 50, 11);
        b.fit(&x, &y);
        for row in x.iter().take(10) {
            assert_eq!(a.predict_proba(row), b.predict_proba(row));
        }
    }

    #[test]
    fn probabilities_stay_in_unit_interval() {
        let (x, y) = xor_data();
        let mut mlp = MlpClassifier::new(8, 0.2, 100, 5);
        mlp.fit(&x, &y);
        for row in &x {
            let p = mlp.predict_proba(row);
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
