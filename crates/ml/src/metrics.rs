//! Classification metrics reported in Table 4: accuracy and AUC.

/// Fraction of predictions matching the labels. Returns 0 for empty input.
pub fn accuracy(labels: &[u8], predictions: &[u8]) -> f64 {
    assert_eq!(labels.len(), predictions.len(), "length mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let correct = labels
        .iter()
        .zip(predictions.iter())
        .filter(|(a, b)| a == b)
        .count();
    correct as f64 / labels.len() as f64
}

/// Area under the ROC curve, computed via the rank-sum (Mann–Whitney)
/// formulation with average ranks for ties. Returns 0.5 when either class is
/// absent (an undefined AUC).
pub fn area_under_roc(labels: &[u8], scores: &[f64]) -> f64 {
    assert_eq!(labels.len(), scores.len(), "length mismatch");
    let positives = labels.iter().filter(|&&l| l == 1).count();
    let negatives = labels.len() - positives;
    if positives == 0 || negatives == 0 {
        return 0.5;
    }
    // Rank the scores ascending, assigning average ranks to ties.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0usize;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let average_rank = (i + j) as f64 / 2.0 + 1.0;
        for &index in &order[i..=j] {
            ranks[index] = average_rank;
        }
        i = j + 1;
    }
    let positive_rank_sum: f64 = labels
        .iter()
        .zip(ranks.iter())
        .filter(|(&l, _)| l == 1)
        .map(|(_, &r)| r)
        .sum();
    let p = positives as f64;
    let n = negatives as f64;
    (positive_rank_sum - p * (p + 1.0) / 2.0) / (p * n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basics() {
        assert_eq!(accuracy(&[1, 0, 1, 0], &[1, 0, 0, 0]), 0.75);
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(accuracy(&[1, 1], &[1, 1]), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_length_mismatch_panics() {
        let _ = accuracy(&[1], &[1, 0]);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let labels = [0, 0, 1, 1];
        assert!((area_under_roc(&labels, &[0.1, 0.2, 0.8, 0.9]) - 1.0).abs() < 1e-12);
        assert!((area_under_roc(&labels, &[0.9, 0.8, 0.2, 0.1]) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn auc_random_scores_near_half() {
        let labels = [0, 1, 0, 1, 0, 1, 0, 1];
        let scores = [0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5];
        assert!((area_under_roc(&labels, &scores) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_with_ties_uses_average_ranks() {
        let labels = [0, 1, 1, 0];
        let scores = [0.3, 0.3, 0.9, 0.1];
        // Pairs: (pos 0.3 vs neg 0.3) → 0.5, (pos 0.3 vs neg 0.1) → 1,
        //        (pos 0.9 vs neg 0.3) → 1, (pos 0.9 vs neg 0.1) → 1 ⇒ 3.5/4.
        assert!((area_under_roc(&labels, &scores) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn auc_degenerate_single_class() {
        assert_eq!(area_under_roc(&[1, 1], &[0.2, 0.9]), 0.5);
        assert_eq!(area_under_roc(&[0, 0], &[0.2, 0.9]), 0.5);
    }
}
