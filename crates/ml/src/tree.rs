//! A CART-style binary decision tree with Gini impurity.

use crate::Classifier;

/// A node of the decision tree.
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        positive_fraction: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// Decision-tree classifier (Gini impurity, axis-aligned splits).
#[derive(Debug, Clone)]
pub struct DecisionTree {
    max_depth: usize,
    min_samples_split: usize,
    root: Option<Node>,
    /// When `Some(k)`, each split considers only `k` pseudo-randomly chosen
    /// features (used by the random forest).
    feature_subset: Option<usize>,
    rng_state: u64,
}

impl DecisionTree {
    /// Creates an untrained tree with the given depth and minimum split size.
    pub fn new(max_depth: usize, min_samples_split: usize) -> Self {
        Self {
            max_depth,
            min_samples_split: min_samples_split.max(2),
            root: None,
            feature_subset: None,
            rng_state: 0x853C49E6748FEA9B,
        }
    }

    /// Enables per-split feature sub-sampling (for random forests).
    pub fn with_feature_subset(mut self, subset: usize, seed: u64) -> Self {
        self.feature_subset = Some(subset.max(1));
        self.rng_state = seed | 1;
        self
    }

    fn next_random(&mut self) -> u64 {
        // xorshift64*
        self.rng_state ^= self.rng_state >> 12;
        self.rng_state ^= self.rng_state << 25;
        self.rng_state ^= self.rng_state >> 27;
        self.rng_state.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn gini(positives: f64, total: f64) -> f64 {
        if total == 0.0 {
            return 0.0;
        }
        let p = positives / total;
        2.0 * p * (1.0 - p)
    }

    fn candidate_features(&mut self, width: usize) -> Vec<usize> {
        match self.feature_subset {
            None => (0..width).collect(),
            Some(k) => {
                let k = k.min(width);
                let mut chosen = Vec::with_capacity(k);
                while chosen.len() < k {
                    let f = (self.next_random() as usize) % width;
                    if !chosen.contains(&f) {
                        chosen.push(f);
                    }
                }
                chosen
            }
        }
    }

    fn build(&mut self, x: &[Vec<f64>], y: &[u8], indices: &[usize], depth: usize) -> Node {
        let total = indices.len() as f64;
        let positives = indices.iter().map(|&i| y[i] as usize).sum::<usize>() as f64;
        let positive_fraction = if total > 0.0 { positives / total } else { 0.5 };

        let pure = positives == 0.0 || positives == total;
        if depth >= self.max_depth || indices.len() < self.min_samples_split || pure {
            return Node::Leaf { positive_fraction };
        }

        let width = x[0].len();
        let parent_gini = Self::gini(positives, total);
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
        for feature in self.candidate_features(width) {
            // Sort the examples by this feature and scan split points.
            let mut sorted: Vec<usize> = indices.to_vec();
            sorted.sort_by(|&a, &b| {
                x[a][feature]
                    .partial_cmp(&x[b][feature])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut left_total = 0.0f64;
            let mut left_positive = 0.0f64;
            for window in 0..sorted.len() - 1 {
                let index = sorted[window];
                left_total += 1.0;
                left_positive += f64::from(y[index]);
                let this_value = x[index][feature];
                let next_value = x[sorted[window + 1]][feature];
                if this_value == next_value {
                    continue;
                }
                let right_total = total - left_total;
                let right_positive = positives - left_positive;
                let weighted = (left_total / total) * Self::gini(left_positive, left_total)
                    + (right_total / total) * Self::gini(right_positive, right_total);
                let gain = parent_gini - weighted;
                let threshold = (this_value + next_value) / 2.0;
                if best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((feature, threshold, gain));
                }
            }
        }

        let Some((feature, threshold, gain)) = best else {
            return Node::Leaf { positive_fraction };
        };
        if gain <= 1e-12 {
            return Node::Leaf { positive_fraction };
        }
        let (left_indices, right_indices): (Vec<usize>, Vec<usize>) =
            indices.iter().partition(|&&i| x[i][feature] <= threshold);
        if left_indices.is_empty() || right_indices.is_empty() {
            return Node::Leaf { positive_fraction };
        }
        Node::Split {
            feature,
            threshold,
            left: Box::new(self.build(x, y, &left_indices, depth + 1)),
            right: Box::new(self.build(x, y, &right_indices, depth + 1)),
        }
    }
}

impl Classifier for DecisionTree {
    fn fit(&mut self, x: &[Vec<f64>], y: &[u8]) {
        assert_eq!(x.len(), y.len(), "rows and labels must align");
        if x.is_empty() {
            self.root = None;
            return;
        }
        let indices: Vec<usize> = (0..x.len()).collect();
        self.root = Some(self.build(x, y, &indices, 0));
    }

    fn predict_proba(&self, features: &[f64]) -> f64 {
        let mut node = match &self.root {
            Some(node) => node,
            None => return 0.5,
        };
        loop {
            match node {
                Node::Leaf { positive_fraction } => return *positive_fraction,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if features[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    /// XOR-like problem: not linearly separable, but a depth-2 tree nails it.
    fn xor_data() -> (Vec<Vec<f64>>, Vec<u8>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                let a = i as f64 / 10.0;
                let b = j as f64 / 10.0;
                x.push(vec![a, b]);
                y.push(u8::from((a > 0.5) != (b > 0.5)));
            }
        }
        (x, y)
    }

    #[test]
    fn solves_xor() {
        let (x, y) = xor_data();
        let mut tree = DecisionTree::new(4, 2);
        tree.fit(&x, &y);
        let predictions: Vec<u8> = x.iter().map(|row| tree.predict(row)).collect();
        assert!(accuracy(&y, &predictions) > 0.95);
    }

    #[test]
    fn depth_zero_yields_prior() {
        let (x, y) = xor_data();
        let mut stump = DecisionTree::new(0, 2);
        stump.fit(&x, &y);
        let p = stump.predict_proba(&[0.1, 0.1]);
        let prior = y.iter().map(|&l| l as usize).sum::<usize>() as f64 / y.len() as f64;
        assert!((p - prior).abs() < 1e-12);
    }

    #[test]
    fn pure_leaves_give_extreme_probabilities() {
        let x = vec![vec![0.0], vec![0.1], vec![0.9], vec![1.0]];
        let y = vec![0, 0, 1, 1];
        let mut tree = DecisionTree::new(3, 2);
        tree.fit(&x, &y);
        assert_eq!(tree.predict_proba(&[0.05]), 0.0);
        assert_eq!(tree.predict_proba(&[0.95]), 1.0);
    }

    #[test]
    fn untrained_tree_returns_half() {
        let tree = DecisionTree::new(3, 2);
        assert_eq!(tree.predict_proba(&[1.0]), 0.5);
    }

    #[test]
    fn constant_features_yield_leaf() {
        let x = vec![vec![1.0], vec![1.0], vec![1.0], vec![1.0]];
        let y = vec![0, 1, 0, 1];
        let mut tree = DecisionTree::new(5, 2);
        tree.fit(&x, &y);
        assert!((tree.predict_proba(&[1.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn feature_subset_still_learns() {
        // A diagonal boundary: every axis-aligned split on either feature has
        // positive information gain, so a tree restricted to one random
        // candidate feature per node still learns the concept well. (XOR is
        // deliberately not used here: restricted to a single feature per
        // split, its first split can carry almost no gain.)
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                let a = i as f64 / 10.0;
                let b = j as f64 / 10.0;
                x.push(vec![a, b]);
                y.push(u8::from(a + b > 0.9));
            }
        }
        let mut tree = DecisionTree::new(6, 2).with_feature_subset(1, 11);
        tree.fit(&x, &y);
        let predictions: Vec<u8> = x.iter().map(|row| tree.predict(row)).collect();
        assert!(accuracy(&y, &predictions) > 0.75);
    }
}
