//! k-nearest-neighbours classification with Euclidean distance.

use crate::Classifier;

/// k-NN classifier. Stores the training data and answers queries by scanning
/// it (the prediction datasets in this repository are small).
#[derive(Debug, Clone)]
pub struct KNearestNeighbors {
    k: usize,
    points: Vec<Vec<f64>>,
    labels: Vec<u8>,
}

impl KNearestNeighbors {
    /// Creates an untrained classifier using the `k` nearest neighbours.
    pub fn new(k: usize) -> Self {
        Self {
            k: k.max(1),
            points: Vec::new(),
            labels: Vec::new(),
        }
    }

    fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
    }
}

impl Classifier for KNearestNeighbors {
    fn fit(&mut self, x: &[Vec<f64>], y: &[u8]) {
        assert_eq!(x.len(), y.len(), "rows and labels must align");
        self.points = x.to_vec();
        self.labels = y.to_vec();
    }

    fn predict_proba(&self, features: &[f64]) -> f64 {
        if self.points.is_empty() {
            return 0.5;
        }
        let mut distances: Vec<(f64, u8)> = self
            .points
            .iter()
            .zip(self.labels.iter())
            .map(|(p, &l)| (Self::squared_distance(p, features), l))
            .collect();
        let k = self.k.min(distances.len());
        distances.select_nth_unstable_by(k - 1, |a, b| {
            a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal)
        });
        let positives = distances[..k].iter().filter(|&&(_, l)| l == 1).count();
        positives as f64 / k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clusters() -> (Vec<Vec<f64>>, Vec<u8>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            x.push(vec![1.0 + (i % 5) as f64 * 0.01, 1.0]);
            y.push(1);
            x.push(vec![-1.0 - (i % 5) as f64 * 0.01, -1.0]);
            y.push(0);
        }
        (x, y)
    }

    #[test]
    fn classifies_clusters() {
        let (x, y) = clusters();
        let mut knn = KNearestNeighbors::new(5);
        knn.fit(&x, &y);
        assert_eq!(knn.predict(&[1.0, 0.9]), 1);
        assert_eq!(knn.predict(&[-1.0, -0.9]), 0);
        assert_eq!(knn.predict_proba(&[1.0, 1.0]), 1.0);
        assert_eq!(knn.predict_proba(&[-1.0, -1.0]), 0.0);
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![0, 1];
        let mut knn = KNearestNeighbors::new(50);
        knn.fit(&x, &y);
        // Both points are used → probability is the class prior.
        assert!((knn.predict_proba(&[0.4]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn probability_reflects_neighbourhood_mix() {
        let x = vec![vec![0.0], vec![0.1], vec![0.2], vec![5.0]];
        let y = vec![1, 1, 0, 0];
        let mut knn = KNearestNeighbors::new(3);
        knn.fit(&x, &y);
        let p = knn.predict_proba(&[0.05]);
        assert!((p - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn untrained_returns_half() {
        let knn = KNearestNeighbors::new(3);
        assert_eq!(knn.predict_proba(&[1.0]), 0.5);
    }

    #[test]
    fn zero_k_is_promoted_to_one() {
        let mut knn = KNearestNeighbors::new(0);
        knn.fit(&[vec![0.0]], &[1]);
        assert_eq!(knn.predict_proba(&[0.0]), 1.0);
    }
}
