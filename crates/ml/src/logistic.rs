//! L2-regularized logistic regression trained with full-batch gradient
//! descent.

use crate::Classifier;

/// Logistic regression classifier.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    learning_rate: f64,
    epochs: usize,
    l2: f64,
    weights: Vec<f64>,
    bias: f64,
}

impl LogisticRegression {
    /// Creates an untrained model with the given learning rate, number of
    /// epochs and L2 penalty.
    pub fn new(learning_rate: f64, epochs: usize, l2: f64) -> Self {
        Self {
            learning_rate,
            epochs,
            l2,
            weights: Vec::new(),
            bias: 0.0,
        }
    }

    /// The learned weights (empty before fitting).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The learned bias.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    fn sigmoid(z: f64) -> f64 {
        1.0 / (1.0 + (-z).exp())
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, x: &[Vec<f64>], y: &[u8]) {
        assert_eq!(x.len(), y.len(), "rows and labels must align");
        let n = x.len();
        if n == 0 {
            return;
        }
        let width = x[0].len();
        self.weights = vec![0.0; width];
        self.bias = 0.0;
        let n_f = n as f64;
        for _ in 0..self.epochs {
            let mut gradient_w = vec![0.0; width];
            let mut gradient_b = 0.0;
            for (row, &label) in x.iter().zip(y.iter()) {
                let z: f64 = self.bias
                    + row
                        .iter()
                        .zip(self.weights.iter())
                        .map(|(a, w)| a * w)
                        .sum::<f64>();
                let error = Self::sigmoid(z) - f64::from(label);
                for (g, value) in gradient_w.iter_mut().zip(row.iter()) {
                    *g += error * value;
                }
                gradient_b += error;
            }
            for (w, g) in self.weights.iter_mut().zip(gradient_w.iter()) {
                *w -= self.learning_rate * (g / n_f + self.l2 * *w);
            }
            self.bias -= self.learning_rate * gradient_b / n_f;
        }
    }

    fn predict_proba(&self, features: &[f64]) -> f64 {
        if self.weights.is_empty() {
            return 0.5;
        }
        let z: f64 = self.bias
            + features
                .iter()
                .zip(self.weights.iter())
                .map(|(a, w)| a * w)
                .sum::<f64>();
        Self::sigmoid(z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;

    fn separable() -> (Vec<Vec<f64>>, Vec<u8>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            let v = i as f64 / 50.0 - 1.0;
            x.push(vec![v]);
            y.push(u8::from(v > 0.0));
        }
        (x, y)
    }

    #[test]
    fn learns_a_threshold() {
        let (x, y) = separable();
        let mut model = LogisticRegression::new(0.5, 500, 0.0);
        model.fit(&x, &y);
        assert!(model.predict_proba(&[0.9]) > 0.9);
        assert!(model.predict_proba(&[-0.9]) < 0.1);
        let predictions: Vec<u8> = x.iter().map(|row| model.predict(row)).collect();
        assert!(accuracy(&y, &predictions) > 0.95);
        assert!(model.weights()[0] > 0.0);
        assert!(model.bias().abs() < 2.0);
    }

    #[test]
    fn untrained_model_is_uninformative() {
        let model = LogisticRegression::new(0.1, 10, 0.0);
        assert_eq!(model.predict_proba(&[1.0, 2.0]), 0.5);
    }

    #[test]
    fn l2_shrinks_weights() {
        let (x, y) = separable();
        let mut free = LogisticRegression::new(0.5, 300, 0.0);
        free.fit(&x, &y);
        let mut penalized = LogisticRegression::new(0.5, 300, 0.5);
        penalized.fit(&x, &y);
        assert!(penalized.weights()[0].abs() < free.weights()[0].abs());
    }

    #[test]
    fn empty_training_set_is_a_noop() {
        let mut model = LogisticRegression::new(0.1, 10, 0.0);
        model.fit(&[], &[]);
        assert_eq!(model.predict_proba(&[3.0]), 0.5);
    }
}
