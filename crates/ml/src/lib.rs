//! A deliberately small, dependency-free machine-learning toolkit.
//!
//! Section 4.4 / Table 4 of the paper evaluates hyperedge prediction with
//! five off-the-shelf classifiers (logistic regression, random forest,
//! decision tree, k-nearest-neighbours, MLP). scikit-learn is not available
//! to this reproduction, so the five classifiers are implemented here from
//! scratch, together with the two reported metrics (accuracy and AUC), a
//! train/test split helper and feature standardization.
//!
//! The implementations favour clarity over raw speed; the prediction
//! experiment operates on a few thousand examples with ≤ 26 features, well
//! within their comfort zone.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod forest;
pub mod knn;
pub mod logistic;
pub mod metrics;
pub mod mlp;
pub mod tree;

pub use dataset::{train_test_split, Dataset, Standardizer};
pub use forest::RandomForest;
pub use knn::KNearestNeighbors;
pub use logistic::LogisticRegression;
pub use metrics::{accuracy, area_under_roc};
pub use mlp::MlpClassifier;
pub use tree::DecisionTree;

/// A binary classifier that produces a probability of the positive class.
pub trait Classifier {
    /// Fits the classifier on feature rows `x` and binary labels `y`
    /// (0 or 1). Rows must all have the same length.
    fn fit(&mut self, x: &[Vec<f64>], y: &[u8]);

    /// Probability that `features` belongs to the positive class.
    fn predict_proba(&self, features: &[f64]) -> f64;

    /// Hard 0/1 prediction at the 0.5 threshold.
    fn predict(&self, features: &[f64]) -> u8 {
        u8::from(self.predict_proba(features) >= 0.5)
    }
}

/// The five classifier families of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassifierKind {
    /// L2-regularized logistic regression trained by gradient descent.
    LogisticRegression,
    /// Bagged ensemble of decision trees with feature sub-sampling.
    RandomForest,
    /// Single CART decision tree (Gini impurity).
    DecisionTree,
    /// k-nearest-neighbours with Euclidean distance.
    KNearestNeighbors,
    /// One-hidden-layer multi-layer perceptron.
    Mlp,
}

impl ClassifierKind {
    /// All five kinds, in the row order of Table 4.
    pub const ALL: [ClassifierKind; 5] = [
        ClassifierKind::LogisticRegression,
        ClassifierKind::RandomForest,
        ClassifierKind::DecisionTree,
        ClassifierKind::KNearestNeighbors,
        ClassifierKind::Mlp,
    ];

    /// Human-readable name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            ClassifierKind::LogisticRegression => "Logistic Regression",
            ClassifierKind::RandomForest => "Random Forest",
            ClassifierKind::DecisionTree => "Decision Tree",
            ClassifierKind::KNearestNeighbors => "K-Nearest Neighbors",
            ClassifierKind::Mlp => "MLP Classifier",
        }
    }

    /// Instantiates the classifier with the default hyper-parameters used by
    /// the Table 4 reproduction, seeded for determinism.
    pub fn build(&self, seed: u64) -> Box<dyn Classifier> {
        match self {
            ClassifierKind::LogisticRegression => Box::new(LogisticRegression::new(0.1, 300, 1e-4)),
            ClassifierKind::RandomForest => Box::new(RandomForest::new(40, 8, 4, seed)),
            ClassifierKind::DecisionTree => Box::new(DecisionTree::new(8, 4)),
            ClassifierKind::KNearestNeighbors => Box::new(KNearestNeighbors::new(15)),
            ClassifierKind::Mlp => Box::new(MlpClassifier::new(32, 0.05, 200, seed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_have_unique_names() {
        let names: std::collections::BTreeSet<_> =
            ClassifierKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 5);
    }

    /// Every classifier kind must learn a trivially separable problem.
    #[test]
    fn all_kinds_learn_a_separable_problem() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let value = i as f64 / 100.0 - 1.0; // [-1, 1)
            x.push(vec![value, -value]);
            y.push(u8::from(value > 0.0));
        }
        for kind in ClassifierKind::ALL {
            let mut model = kind.build(7);
            model.fit(&x, &y);
            assert_eq!(model.predict(&[0.8, -0.8]), 1, "{}", kind.name());
            assert_eq!(model.predict(&[-0.8, 0.8]), 0, "{}", kind.name());
            let p_positive = model.predict_proba(&[0.9, -0.9]);
            let p_negative = model.predict_proba(&[-0.9, 0.9]);
            assert!(
                p_positive > p_negative,
                "{}: {p_positive} vs {p_negative}",
                kind.name()
            );
        }
    }
}
