//! Random forest: bootstrap-aggregated decision trees with feature
//! sub-sampling.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::tree::DecisionTree;
use crate::Classifier;

/// Random-forest classifier.
#[derive(Debug, Clone)]
pub struct RandomForest {
    num_trees: usize,
    max_depth: usize,
    min_samples_split: usize,
    seed: u64,
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Creates an untrained forest.
    pub fn new(num_trees: usize, max_depth: usize, min_samples_split: usize, seed: u64) -> Self {
        Self {
            num_trees: num_trees.max(1),
            max_depth,
            min_samples_split,
            seed,
            trees: Vec::new(),
        }
    }

    /// Number of fitted trees (0 before training).
    pub fn num_fitted_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, x: &[Vec<f64>], y: &[u8]) {
        assert_eq!(x.len(), y.len(), "rows and labels must align");
        self.trees.clear();
        if x.is_empty() {
            return;
        }
        let n = x.len();
        let width = x[0].len();
        let subset = (width as f64).sqrt().ceil() as usize;
        let mut rng = StdRng::seed_from_u64(self.seed);
        for t in 0..self.num_trees {
            // Bootstrap sample of the training set.
            let mut sample_x = Vec::with_capacity(n);
            let mut sample_y = Vec::with_capacity(n);
            for _ in 0..n {
                let index = rng.gen_range(0..n);
                sample_x.push(x[index].clone());
                sample_y.push(y[index]);
            }
            let mut tree = DecisionTree::new(self.max_depth, self.min_samples_split)
                .with_feature_subset(subset, self.seed.wrapping_add(t as u64 + 1));
            tree.fit(&sample_x, &sample_y);
            self.trees.push(tree);
        }
    }

    fn predict_proba(&self, features: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.5;
        }
        self.trees
            .iter()
            .map(|tree| tree.predict_proba(features))
            .sum::<f64>()
            / self.trees.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, area_under_roc};

    fn noisy_blobs(seed: u64) -> (Vec<Vec<f64>>, Vec<u8>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..150 {
            let label = rng.gen_bool(0.5);
            let centre = if label { 1.0 } else { -1.0 };
            x.push(vec![
                centre + rng.gen_range(-0.8..0.8),
                -centre + rng.gen_range(-0.8..0.8),
            ]);
            y.push(u8::from(label));
        }
        (x, y)
    }

    #[test]
    fn forest_learns_blobs_and_beats_chance_auc() {
        let (x, y) = noisy_blobs(0);
        let mut forest = RandomForest::new(25, 6, 2, 3);
        forest.fit(&x, &y);
        assert_eq!(forest.num_fitted_trees(), 25);
        let predictions: Vec<u8> = x.iter().map(|row| forest.predict(row)).collect();
        let scores: Vec<f64> = x.iter().map(|row| forest.predict_proba(row)).collect();
        assert!(accuracy(&y, &predictions) > 0.9);
        assert!(area_under_roc(&y, &scores) > 0.95);
    }

    #[test]
    fn forest_is_deterministic_given_a_seed() {
        let (x, y) = noisy_blobs(1);
        let mut a = RandomForest::new(10, 5, 2, 42);
        a.fit(&x, &y);
        let mut b = RandomForest::new(10, 5, 2, 42);
        b.fit(&x, &y);
        for row in x.iter().take(20) {
            assert_eq!(a.predict_proba(row), b.predict_proba(row));
        }
    }

    #[test]
    fn untrained_forest_returns_half() {
        let forest = RandomForest::new(5, 3, 2, 0);
        assert_eq!(forest.predict_proba(&[0.0, 0.0]), 0.5);
    }

    #[test]
    fn probabilities_are_smoother_than_a_single_tree() {
        let (x, y) = noisy_blobs(2);
        let mut tree = DecisionTree::new(6, 2);
        tree.fit(&x, &y);
        let mut forest = RandomForest::new(30, 6, 2, 5);
        forest.fit(&x, &y);
        // The forest produces more distinct probability levels than one tree.
        let distinct = |scores: Vec<f64>| {
            let mut sorted: Vec<i64> = scores.iter().map(|s| (s * 1e6) as i64).collect();
            sorted.sort_unstable();
            sorted.dedup();
            sorted.len()
        };
        let tree_levels = distinct(x.iter().map(|r| tree.predict_proba(r)).collect());
        let forest_levels = distinct(x.iter().map(|r| forest.predict_proba(r)).collect());
        assert!(forest_levels >= tree_levels);
    }
}
