//! Feature matrices, train/test splitting and standardization.

use rand::seq::SliceRandom;
use rand::Rng;

/// A labelled dataset: one feature row per example plus a 0/1 label.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    /// Feature rows; all rows have the same length.
    pub features: Vec<Vec<f64>>,
    /// Binary labels, aligned with `features`.
    pub labels: Vec<u8>,
}

impl Dataset {
    /// Creates a dataset, checking that rows and labels align.
    pub fn new(features: Vec<Vec<f64>>, labels: Vec<u8>) -> Self {
        assert_eq!(features.len(), labels.len(), "rows and labels must align");
        if let Some(first) = features.first() {
            let width = first.len();
            assert!(
                features.iter().all(|row| row.len() == width),
                "all feature rows must have the same width"
            );
        }
        Self { features, labels }
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features per example (0 for an empty dataset).
    pub fn num_features(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    /// Appends one example.
    pub fn push(&mut self, row: Vec<f64>, label: u8) {
        if !self.features.is_empty() {
            assert_eq!(row.len(), self.num_features(), "row width mismatch");
        }
        self.features.push(row);
        self.labels.push(label);
    }

    /// Fraction of positive labels.
    pub fn positive_rate(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.labels.iter().map(|&l| l as usize).sum::<usize>() as f64 / self.len() as f64
    }

    /// Keeps only the feature columns listed in `columns` (in that order).
    /// Used to derive HM7 (the 7 highest-variance columns of HM26).
    pub fn select_columns(&self, columns: &[usize]) -> Dataset {
        let features = self
            .features
            .iter()
            .map(|row| columns.iter().map(|&c| row[c]).collect())
            .collect();
        Dataset::new(features, self.labels.clone())
    }

    /// Indices of the `k` columns with the largest variance.
    pub fn top_variance_columns(&self, k: usize) -> Vec<usize> {
        let width = self.num_features();
        let n = self.len().max(1) as f64;
        let mut variances: Vec<(usize, f64)> = (0..width)
            .map(|c| {
                let mean: f64 = self.features.iter().map(|row| row[c]).sum::<f64>() / n;
                let variance: f64 = self
                    .features
                    .iter()
                    .map(|row| (row[c] - mean) * (row[c] - mean))
                    .sum::<f64>()
                    / n;
                (c, variance)
            })
            .collect();
        variances.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        variances.into_iter().take(k).map(|(c, _)| c).collect()
    }
}

/// Splits a dataset into train and test portions after a seeded shuffle.
/// `test_fraction` is clamped to `[0, 1]`.
pub fn train_test_split<R: Rng + ?Sized>(
    dataset: &Dataset,
    test_fraction: f64,
    rng: &mut R,
) -> (Dataset, Dataset) {
    let mut order: Vec<usize> = (0..dataset.len()).collect();
    order.shuffle(rng);
    let test_size = ((dataset.len() as f64) * test_fraction.clamp(0.0, 1.0)).round() as usize;
    let mut train = Dataset::default();
    let mut test = Dataset::default();
    for (position, &index) in order.iter().enumerate() {
        let row = dataset.features[index].clone();
        let label = dataset.labels[index];
        if position < test_size {
            test.push(row, label);
        } else {
            train.push(row, label);
        }
    }
    (train, test)
}

/// Per-column z-score standardizer fitted on training data.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fits means and standard deviations on the rows of `dataset`.
    pub fn fit(dataset: &Dataset) -> Self {
        let width = dataset.num_features();
        let n = dataset.len().max(1) as f64;
        let mut means = vec![0.0; width];
        for row in &dataset.features {
            for (m, v) in means.iter_mut().zip(row.iter()) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; width];
        for row in &dataset.features {
            for ((s, v), m) in stds.iter_mut().zip(row.iter()).zip(means.iter()) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0; // constant column: leave values centred at 0
            }
        }
        Self { means, stds }
    }

    /// Transforms one feature row in place.
    pub fn transform_row(&self, row: &mut [f64]) {
        for ((value, mean), std) in row.iter_mut().zip(&self.means).zip(&self.stds) {
            *value = (*value - mean) / std;
        }
    }

    /// Returns a standardized copy of a dataset.
    pub fn transform(&self, dataset: &Dataset) -> Dataset {
        let features = dataset
            .features
            .iter()
            .map(|row| {
                let mut row = row.clone();
                self.transform_row(&mut row);
                row
            })
            .collect();
        Dataset::new(features, dataset.labels.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Dataset {
        Dataset::new(
            vec![
                vec![1.0, 10.0],
                vec![2.0, 10.0],
                vec![3.0, 10.0],
                vec![4.0, 10.0],
            ],
            vec![0, 0, 1, 1],
        )
    }

    #[test]
    fn construction_and_accessors() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.num_features(), 2);
        assert!(!d.is_empty());
        assert!((d.positive_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn mismatched_labels_rejected() {
        let _ = Dataset::new(vec![vec![1.0]], vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "same width")]
    fn ragged_rows_rejected() {
        let _ = Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0, 1]);
    }

    #[test]
    fn split_partitions_all_examples() {
        let d = toy();
        let mut rng = StdRng::seed_from_u64(0);
        let (train, test) = train_test_split(&d, 0.25, &mut rng);
        assert_eq!(train.len() + test.len(), d.len());
        assert_eq!(test.len(), 1);
        assert_eq!(train.num_features(), 2);
    }

    #[test]
    fn split_extremes() {
        let d = toy();
        let mut rng = StdRng::seed_from_u64(1);
        let (train, test) = train_test_split(&d, 0.0, &mut rng);
        assert_eq!(train.len(), 4);
        assert!(test.is_empty());
        let (train, test) = train_test_split(&d, 1.0, &mut rng);
        assert!(train.is_empty());
        assert_eq!(test.len(), 4);
    }

    #[test]
    fn standardizer_centres_and_scales() {
        let d = toy();
        let standardizer = Standardizer::fit(&d);
        let transformed = standardizer.transform(&d);
        let column: Vec<f64> = transformed.features.iter().map(|r| r[0]).collect();
        let mean: f64 = column.iter().sum::<f64>() / column.len() as f64;
        let var: f64 =
            column.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / column.len() as f64;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-9);
        // Constant column stays finite (std forced to 1).
        assert!(transformed.features.iter().all(|r| r[1].abs() < 1e-12));
    }

    #[test]
    fn top_variance_and_selection() {
        let d = Dataset::new(
            vec![
                vec![0.0, 5.0, 100.0],
                vec![0.1, 5.0, -100.0],
                vec![0.2, 5.0, 50.0],
            ],
            vec![0, 1, 0],
        );
        let top = d.top_variance_columns(2);
        assert_eq!(top[0], 2);
        assert_eq!(top.len(), 2);
        let selected = d.select_columns(&top);
        assert_eq!(selected.num_features(), 2);
        assert_eq!(selected.features[0][0], 100.0);
    }

    #[test]
    fn push_checks_width() {
        let mut d = toy();
        d.push(vec![5.0, 20.0], 1);
        assert_eq!(d.len(), 5);
    }
}
