//! Malformed-input coverage for `mochy_hypergraph::io`: every rejection
//! path of the edge-list and Benson readers reports a typed error with
//! enough context (line numbers, offending values) to act on.

use std::io::Cursor;

use mochy_hypergraph::io::{read_benson, read_edge_list, read_edge_list_with, ReadOptions};
use mochy_hypergraph::HypergraphError;

fn keep_duplicates() -> ReadOptions {
    ReadOptions {
        dedup_hyperedges: false,
        relabel_nodes: false,
    }
}

#[test]
fn non_numeric_token_reports_its_line() {
    let input = "0 1 2\n0 3\nnot-a-node 4\n";
    match read_edge_list(Cursor::new(input)).unwrap_err() {
        HypergraphError::Parse { line, message } => {
            assert_eq!(line, 3);
            assert!(message.contains("not-a-node"), "{message}");
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn separator_only_line_is_an_empty_hyperedge() {
    // A line of nothing but separators parses to zero members — an empty
    // hyperedge, which the format forbids.
    let input = "0 1\n, ,,\n";
    match read_edge_list(Cursor::new(input)).unwrap_err() {
        HypergraphError::Parse { line, message } => {
            assert_eq!(line, 2);
            assert!(message.contains("no members"), "{message}");
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn dangling_node_id_beyond_u32_is_rejected() {
    // Node ids must fit the u32 id space; a dangling 64-bit id cannot be
    // bound to any node.
    let overflowing = u64::from(u32::MAX);
    let input = format!("0 1\n2 {overflowing}\n");
    match read_edge_list(Cursor::new(input)).unwrap_err() {
        HypergraphError::NodeIdOverflow { node } => assert_eq!(node, overflowing),
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn file_with_no_hyperedges_is_rejected() {
    for input in ["", "# only comments\n% and more\n", "\n\n\n"] {
        assert!(
            matches!(
                read_edge_list(Cursor::new(input)).unwrap_err(),
                HypergraphError::NoEdges
            ),
            "input {input:?}"
        );
    }
}

#[test]
fn duplicate_hyperedges_dedup_by_default_and_survive_when_asked() {
    // The same member set twice (order and separators irrelevant).
    let input = "0 1 2\n2,1,0\n3 4\n";
    let deduped = read_edge_list(Cursor::new(input)).unwrap();
    assert_eq!(deduped.num_edges(), 2);
    let kept = read_edge_list_with(Cursor::new(input), keep_duplicates()).unwrap();
    assert_eq!(kept.num_edges(), 3);
    assert_eq!(kept.edge(0), kept.edge(1));
}

#[test]
fn benson_invalid_size_token_reports_its_line() {
    let nverts = "2\nthree\n";
    let simplices = "0\n1\n2\n3\n4\n";
    match read_benson(
        Cursor::new(nverts),
        Cursor::new(simplices),
        ReadOptions::default(),
    )
    .unwrap_err()
    {
        HypergraphError::Parse { line, message } => {
            assert_eq!(line, 2);
            assert!(message.contains("three"), "{message}");
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn benson_member_count_mismatch_is_rejected() {
    // Sizes promise 5 members, the simplices file delivers 3.
    let nverts = "3\n2\n";
    let simplices = "0\n1\n2\n";
    match read_benson(
        Cursor::new(nverts),
        Cursor::new(simplices),
        ReadOptions::default(),
    )
    .unwrap_err()
    {
        HypergraphError::Parse { message, .. } => {
            assert!(message.contains("expects 5"), "{message}");
            assert!(message.contains('3'), "{message}");
        }
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn benson_node_overflow_is_rejected() {
    let nverts = "1\n";
    let simplices = format!("{}\n", u64::from(u32::MAX));
    assert!(matches!(
        read_benson(
            Cursor::new(nverts),
            Cursor::new(simplices),
            ReadOptions::default(),
        )
        .unwrap_err(),
        HypergraphError::NodeIdOverflow { .. }
    ));
}

#[test]
fn io_error_from_reader_is_propagated() {
    /// A reader that fails after its buffered prefix.
    struct FailingReader {
        prefix: Cursor<&'static [u8]>,
        failed: bool,
    }
    impl std::io::Read for FailingReader {
        fn read(&mut self, buffer: &mut [u8]) -> std::io::Result<usize> {
            let n = std::io::Read::read(&mut self.prefix, buffer)?;
            if n == 0 {
                if self.failed {
                    return Ok(0);
                }
                self.failed = true;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "stream died",
                ));
            }
            Ok(n)
        }
    }
    let reader = std::io::BufReader::new(FailingReader {
        prefix: Cursor::new(b"0 1\n2 3\n"),
        failed: false,
    });
    match read_edge_list(reader).unwrap_err() {
        HypergraphError::Io(error) => {
            assert_eq!(error.kind(), std::io::ErrorKind::BrokenPipe);
        }
        other => panic!("unexpected error {other:?}"),
    }
}
