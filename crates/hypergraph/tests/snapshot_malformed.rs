//! Malformed `.mochy` snapshots must produce typed errors, never panics.
//!
//! The table covers the attack/corruption surface of the format: truncation
//! at every section boundary, bit-flips in the checksum, versions from the
//! future, counts that overflow the file length or the address space,
//! zero-edge/zero-node files, and internally inconsistent payloads (rows
//! unsorted, ids out of range, incidence not the transpose of the edges).

use mochy_hypergraph::snapshot::{
    read_snapshot_bytes, write_snapshot, SnapshotError, FORMAT_VERSION, MAGIC,
};
use mochy_hypergraph::HypergraphBuilder;

/// A pristine snapshot of the Figure-2 hypergraph: 8 nodes, 4 hyperedges,
/// 12 incidences.
fn pristine() -> Vec<u8> {
    let hypergraph = HypergraphBuilder::new()
        .with_edge([0u32, 1, 2])
        .with_edge([0, 3, 1])
        .with_edge([4, 5, 0])
        .with_edge([6, 7, 2])
        .build()
        .unwrap();
    let mut bytes = Vec::new();
    write_snapshot(&hypergraph, &mut bytes).unwrap();
    bytes
}

const HEADER_LEN: usize = 40;

/// The byte offset where each section of the pristine fixture starts.
/// (4 edges, 8 nodes, 12 incidences — see the layout doc in `snapshot.rs`.)
fn section_boundaries(len: usize) -> Vec<(&'static str, usize)> {
    let edge_offsets = HEADER_LEN;
    let edge_values = edge_offsets + (4 + 1) * 8;
    let incidence_offsets = edge_values + 12 * 4;
    let incidence_values = incidence_offsets + (8 + 1) * 8;
    let checksum = incidence_values + 12 * 4;
    assert_eq!(checksum + 8, len, "fixture layout drifted");
    vec![
        ("mid-magic", 4),
        ("after-magic", 8),
        ("after-version", 12),
        ("after-flags", 16),
        ("mid-header-counts", 24),
        ("after-header", edge_offsets),
        ("after-edge-offsets", edge_values),
        ("after-edge-values", incidence_offsets),
        ("after-incidence-offsets", incidence_values),
        ("after-incidence-values", checksum),
        ("mid-checksum", checksum + 4),
    ]
}

#[test]
fn truncation_at_every_section_boundary_is_a_typed_error() {
    let bytes = pristine();
    for (name, boundary) in section_boundaries(bytes.len()) {
        let truncated = &bytes[..boundary];
        let error = read_snapshot_bytes(truncated)
            .err()
            .unwrap_or_else(|| panic!("truncation at {name} ({boundary} bytes) decoded cleanly"));
        assert!(
            matches!(
                error,
                SnapshotError::Truncated { .. } | SnapshotError::LengthMismatch { .. }
            ),
            "truncation at {name}: unexpected error {error}"
        );
    }
}

#[test]
fn truncation_at_every_single_byte_never_panics() {
    let bytes = pristine();
    for length in 0..bytes.len() {
        assert!(
            read_snapshot_bytes(&bytes[..length]).is_err(),
            "{length}-byte prefix of a {}-byte snapshot decoded cleanly",
            bytes.len()
        );
    }
}

#[test]
fn corrupted_checksum_is_reported_as_such() {
    let mut bytes = pristine();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    assert!(matches!(
        read_snapshot_bytes(&bytes),
        Err(SnapshotError::ChecksumMismatch { .. })
    ));
    // A payload flip is also caught by the checksum (reported as corruption
    // of the file before any structural check runs).
    let mut bytes = pristine();
    bytes[HEADER_LEN + 3] ^= 0x10;
    assert!(matches!(
        read_snapshot_bytes(&bytes),
        Err(SnapshotError::ChecksumMismatch { .. })
    ));
}

#[test]
fn version_from_the_future_is_rejected() {
    let mut bytes = pristine();
    bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    match read_snapshot_bytes(&bytes) {
        Err(SnapshotError::UnsupportedVersion { found }) => {
            assert_eq!(found, FORMAT_VERSION + 1)
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn bad_magic_is_rejected_before_anything_else() {
    let mut bytes = pristine();
    bytes[0] = b'X';
    assert!(matches!(
        read_snapshot_bytes(&bytes),
        Err(SnapshotError::BadMagic)
    ));
    // Unrelated formats (e.g. a text dataset) are BadMagic too, as long as
    // they are at least the minimum length.
    let text = b"0 1 2\n0 1 3\n2,4,5\n# padding padding padding padding padding";
    assert!(matches!(
        read_snapshot_bytes(text),
        Err(SnapshotError::BadMagic)
    ));
}

/// Re-seals a tampered payload with a fresh valid checksum, so the test
/// reaches the structural validation beyond the integrity check.
fn reseal(mut bytes: Vec<u8>) -> Vec<u8> {
    fn fnv1a64(bytes: &[u8]) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for &byte in bytes {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
    let payload_end = bytes.len() - 8;
    let checksum = fnv1a64(&bytes[..payload_end]);
    bytes[payload_end..].copy_from_slice(&checksum.to_le_bytes());
    bytes
}

#[test]
fn counts_that_overflow_the_file_length_are_rejected() {
    // Doubling the edge count claims more offset bytes than the file holds.
    let mut bytes = pristine();
    bytes[24..32].copy_from_slice(&8u64.to_le_bytes());
    assert!(matches!(
        read_snapshot_bytes(&reseal(bytes)),
        Err(SnapshotError::LengthMismatch { .. })
    ));
    // Counts near u64::MAX must fail checked arithmetic, not wrap or OOM.
    for offset in [16, 24, 32] {
        let mut bytes = pristine();
        bytes[offset..offset + 8].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        assert!(
            matches!(
                read_snapshot_bytes(&reseal(bytes)),
                Err(SnapshotError::CountOverflow | SnapshotError::LengthMismatch { .. })
            ),
            "huge count at byte {offset} slipped through"
        );
    }
}

#[test]
fn zero_edge_and_zero_node_files_are_rejected() {
    // Zero hyperedges: structurally representable, semantically invalid
    // (hypergraphs are non-empty by construction everywhere else).
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    bytes.extend_from_slice(&0u64.to_le_bytes()); // num_nodes
    bytes.extend_from_slice(&0u64.to_le_bytes()); // num_edges
    bytes.extend_from_slice(&0u64.to_le_bytes()); // num_incidences
    bytes.extend_from_slice(&0u64.to_le_bytes()); // edge_offsets = [0]
    bytes.extend_from_slice(&0u64.to_le_bytes()); // incidence_offsets = [0]
    bytes.extend_from_slice(&[0u8; 8]); // checksum placeholder
    let zero_everything = reseal(bytes);
    match read_snapshot_bytes(&zero_everything) {
        Err(SnapshotError::Corrupt { section, message }) => {
            assert_eq!(section, "header");
            assert!(message.contains("zero hyperedges"), "{message}");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }

    // Zero nodes but one hyperedge: the edge's member cannot be in range.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    bytes.extend_from_slice(&0u64.to_le_bytes()); // num_nodes
    bytes.extend_from_slice(&1u64.to_le_bytes()); // num_edges
    bytes.extend_from_slice(&1u64.to_le_bytes()); // num_incidences
    bytes.extend_from_slice(&0u64.to_le_bytes()); // edge_offsets[0]
    bytes.extend_from_slice(&1u64.to_le_bytes()); // edge_offsets[1]
    bytes.extend_from_slice(&0u32.to_le_bytes()); // edge_values = [0]
    bytes.extend_from_slice(&1u64.to_le_bytes()); // incidence_offsets = [1]?? (invalid start)
    bytes.extend_from_slice(&0u32.to_le_bytes()); // incidence_values = [0]
    bytes.extend_from_slice(&[0u8; 8]);
    assert!(matches!(
        read_snapshot_bytes(&reseal(bytes)),
        Err(SnapshotError::Corrupt { .. })
    ));
}

#[test]
fn nonzero_flags_are_rejected_in_version_1() {
    let mut bytes = pristine();
    bytes[12] = 0x01;
    assert!(matches!(
        read_snapshot_bytes(&reseal(bytes)),
        Err(SnapshotError::Corrupt {
            section: "header",
            ..
        })
    ));
}

#[test]
fn structural_corruption_behind_a_valid_checksum_is_still_caught() {
    let baseline = pristine();
    let edge_values_at = HEADER_LEN + 5 * 8;

    // Unsorted row: swap the first two members of hyperedge 0 ({0,1,2}).
    let mut bytes = baseline.clone();
    bytes[edge_values_at..edge_values_at + 4].copy_from_slice(&1u32.to_le_bytes());
    bytes[edge_values_at + 4..edge_values_at + 8].copy_from_slice(&0u32.to_le_bytes());
    match read_snapshot_bytes(&reseal(bytes)) {
        Err(SnapshotError::Corrupt { section, .. }) => assert_eq!(section, "edge values"),
        other => panic!("unsorted row: expected Corrupt, got {other:?}"),
    }

    // Node id out of range: hyperedge 0 becomes {0, 1, 200} with 8 nodes.
    let mut bytes = baseline.clone();
    bytes[edge_values_at + 8..edge_values_at + 12].copy_from_slice(&200u32.to_le_bytes());
    match read_snapshot_bytes(&reseal(bytes)) {
        Err(SnapshotError::Corrupt { section, message }) => {
            assert_eq!(section, "edge values");
            assert!(message.contains("node 200"), "{message}");
        }
        other => panic!("out-of-range node: expected Corrupt, got {other:?}"),
    }

    // Incidence not the transpose: hyperedge 0 becomes {1, 2, 3} while the
    // incidence section still says node 0 belongs to it. Still sorted and
    // in-range, so only the transpose check can catch it.
    let mut bytes = baseline.clone();
    bytes[edge_values_at..edge_values_at + 4].copy_from_slice(&1u32.to_le_bytes());
    bytes[edge_values_at + 4..edge_values_at + 8].copy_from_slice(&2u32.to_le_bytes());
    bytes[edge_values_at + 8..edge_values_at + 12].copy_from_slice(&3u32.to_le_bytes());
    match read_snapshot_bytes(&reseal(bytes)) {
        Err(SnapshotError::Corrupt { section, .. }) => {
            assert_eq!(section, "incidence values")
        }
        other => panic!("broken transpose: expected Corrupt, got {other:?}"),
    }

    // Offsets not monotone: edge_offsets[1] jumps past edge_offsets[2].
    let mut bytes = baseline;
    let edge_offsets_at = HEADER_LEN;
    bytes[edge_offsets_at + 8..edge_offsets_at + 16].copy_from_slice(&7u64.to_le_bytes());
    match read_snapshot_bytes(&reseal(bytes)) {
        Err(SnapshotError::Corrupt { section, .. }) => assert_eq!(section, "edge offsets"),
        other => panic!("non-monotone offsets: expected Corrupt, got {other:?}"),
    }
}

#[test]
fn error_messages_are_human_readable() {
    let mut bytes = pristine();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    let error = read_snapshot_bytes(&bytes).unwrap_err();
    assert!(error.to_string().contains("version 99"), "{error}");
    let error = read_snapshot_bytes(&pristine()[..10]).unwrap_err();
    assert!(error.to_string().contains("truncated"), "{error}");
}
