//! Property-style tests for the hypergraph substrate.
//!
//! The build environment cannot fetch `proptest`, so these run each
//! property over a deterministic corpus of seeded random hypergraphs
//! (plus the shrunk edge cases proptest would typically find: single
//! node, single edge, duplicate nodes within an edge, duplicate edges).

use mochy_hypergraph::{io, Hypergraph, HypergraphBuilder};
use rand::prelude::*;

const CASES_PER_PROPERTY: u64 = 64;

/// A random small hypergraph as raw edge lists: 1..30 edges over 40 nodes,
/// each with 1..8 (possibly repeated) members.
fn raw_edges(rng: &mut StdRng) -> Vec<Vec<u32>> {
    let num_edges = rng.gen_range(1..30usize);
    (0..num_edges)
        .map(|_| {
            let size = rng.gen_range(1..8usize);
            (0..size).map(|_| rng.gen_range(0..40u32)).collect()
        })
        .collect()
}

/// Hand-picked degenerate inputs that random generation may miss.
fn edge_cases() -> Vec<Vec<Vec<u32>>> {
    vec![
        vec![vec![0]],
        vec![vec![7, 7, 7]],
        vec![vec![0, 1], vec![0, 1]],
        vec![vec![0, 1, 2], vec![3, 4, 5]],
    ]
}

fn for_each_case(property_seed: u64, mut check: impl FnMut(&[Vec<u32>])) {
    for edges in edge_cases() {
        check(&edges);
    }
    let mut rng = StdRng::seed_from_u64(property_seed);
    for _ in 0..CASES_PER_PROPERTY {
        let edges = raw_edges(&mut rng);
        check(&edges);
    }
}

fn build(edges: &[Vec<u32>]) -> Hypergraph {
    let mut builder = HypergraphBuilder::new();
    for edge in edges {
        builder.add_edge(edge.iter().copied());
    }
    builder.build().expect("non-empty hypergraph must build")
}

/// Node degrees always sum to the total number of incidences, and the
/// incidence index is the exact transpose of the edge lists.
#[test]
fn incidence_is_transpose() {
    for_each_case(0xA1, |edges| {
        let h = build(edges);
        assert_eq!(h.node_degrees().iter().sum::<usize>(), h.num_incidences());
        for e in h.edge_ids() {
            for &v in h.edge(e) {
                assert!(h.edges_of_node(v).contains(&e));
            }
        }
        for v in h.node_ids() {
            for &e in h.edges_of_node(v) {
                assert!(h.edge_contains(e, v));
            }
        }
    });
}

/// Pairwise intersection sizes computed by the merge helper agree with a
/// naive set-based computation, and adjacency is symmetric.
#[test]
fn intersections_match_naive() {
    for_each_case(0xA2, |edges| {
        let h = build(edges);
        let n = h.num_edges() as u32;
        for i in 0..n.min(12) {
            for j in 0..n.min(12) {
                let naive = h.edge(i).iter().filter(|v| h.edge(j).contains(v)).count();
                assert_eq!(h.intersection_size(i, j), naive);
                assert_eq!(h.are_adjacent(i, j), naive > 0);
                assert_eq!(h.are_adjacent(i, j), h.are_adjacent(j, i));
            }
        }
    });
}

/// Triple intersections agree with a naive computation.
#[test]
fn triple_intersections_match_naive() {
    for_each_case(0xA3, |edges| {
        let h = build(edges);
        let n = h.num_edges() as u32;
        let limit = n.min(8);
        for i in 0..limit {
            for j in 0..limit {
                for k in 0..limit {
                    let naive = h
                        .edge(i)
                        .iter()
                        .filter(|v| h.edge(j).contains(v) && h.edge(k).contains(v))
                        .count();
                    assert_eq!(h.triple_intersection_size(i, j, k), naive);
                }
            }
        }
    });
}

/// Writing to the text format and reading back yields the same hypergraph
/// (when duplicate hyperedges are not removed).
#[test]
fn io_round_trip() {
    for_each_case(0xA4, |edges| {
        let h = build(edges);
        let mut buffer = Vec::new();
        io::write_edge_list(&h, &mut buffer).unwrap();
        let options = io::ReadOptions {
            dedup_hyperedges: false,
            relabel_nodes: false,
        };
        let restored = io::read_edge_list_with(std::io::Cursor::new(buffer), options).unwrap();
        assert_eq!(h.num_edges(), restored.num_edges());
        for e in h.edge_ids() {
            assert_eq!(h.edge(e), restored.edge(e));
        }
    });
}

/// The star expansion preserves degrees and sizes exactly.
#[test]
fn star_expansion_degrees() {
    for_each_case(0xA5, |edges| {
        let h = build(edges);
        let b = mochy_hypergraph::BipartiteGraph::from_hypergraph(&h);
        assert_eq!(b.num_incidences(), h.num_incidences());
        for v in h.node_ids() {
            assert_eq!(b.left_degree(v), h.node_degree(v));
        }
        for e in h.edge_ids() {
            assert_eq!(b.right_degree(e), h.edge_size(e));
        }
    });
}
