//! Property-based tests for the hypergraph substrate.

use mochy_hypergraph::{io, Hypergraph, HypergraphBuilder};
use proptest::prelude::*;

/// Strategy producing a random small hypergraph as raw edge lists.
fn raw_edges() -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(
        prop::collection::vec(0u32..40, 1..8),
        1..30,
    )
}

fn build(edges: &[Vec<u32>]) -> Hypergraph {
    let mut builder = HypergraphBuilder::new();
    for edge in edges {
        builder.add_edge(edge.iter().copied());
    }
    builder.build().expect("non-empty hypergraph must build")
}

proptest! {
    /// Node degrees always sum to the total number of incidences, and the
    /// incidence index is the exact transpose of the edge lists.
    #[test]
    fn incidence_is_transpose(edges in raw_edges()) {
        let h = build(&edges);
        prop_assert_eq!(
            h.node_degrees().iter().sum::<usize>(),
            h.num_incidences()
        );
        for e in h.edge_ids() {
            for &v in h.edge(e) {
                prop_assert!(h.edges_of_node(v).contains(&e));
            }
        }
        for v in h.node_ids() {
            for &e in h.edges_of_node(v) {
                prop_assert!(h.edge_contains(e, v));
            }
        }
    }

    /// Pairwise intersection sizes computed by the merge helper agree with a
    /// naive set-based computation, and adjacency is symmetric.
    #[test]
    fn intersections_match_naive(edges in raw_edges()) {
        let h = build(&edges);
        let n = h.num_edges() as u32;
        for i in 0..n.min(12) {
            for j in 0..n.min(12) {
                let naive = h
                    .edge(i)
                    .iter()
                    .filter(|v| h.edge(j).contains(v))
                    .count();
                prop_assert_eq!(h.intersection_size(i, j), naive);
                prop_assert_eq!(h.are_adjacent(i, j), naive > 0);
                prop_assert_eq!(h.are_adjacent(i, j), h.are_adjacent(j, i));
            }
        }
    }

    /// Triple intersections agree with a naive computation.
    #[test]
    fn triple_intersections_match_naive(edges in raw_edges()) {
        let h = build(&edges);
        let n = h.num_edges() as u32;
        let limit = n.min(8);
        for i in 0..limit {
            for j in 0..limit {
                for k in 0..limit {
                    let naive = h
                        .edge(i)
                        .iter()
                        .filter(|v| h.edge(j).contains(v) && h.edge(k).contains(v))
                        .count();
                    prop_assert_eq!(h.triple_intersection_size(i, j, k), naive);
                }
            }
        }
    }

    /// Writing to the text format and reading back yields the same hypergraph
    /// (when duplicate hyperedges are not removed).
    #[test]
    fn io_round_trip(edges in raw_edges()) {
        let h = build(&edges);
        let mut buffer = Vec::new();
        io::write_edge_list(&h, &mut buffer).unwrap();
        let options = io::ReadOptions { dedup_hyperedges: false, relabel_nodes: false };
        let restored = io::read_edge_list_with(std::io::Cursor::new(buffer), options).unwrap();
        prop_assert_eq!(h.num_edges(), restored.num_edges());
        for e in h.edge_ids() {
            prop_assert_eq!(h.edge(e), restored.edge(e));
        }
    }

    /// The star expansion preserves degrees and sizes exactly.
    #[test]
    fn star_expansion_degrees(edges in raw_edges()) {
        let h = build(&edges);
        let b = mochy_hypergraph::BipartiteGraph::from_hypergraph(&h);
        prop_assert_eq!(b.num_incidences(), h.num_incidences());
        for v in h.node_ids() {
            prop_assert_eq!(b.left_degree(v), h.node_degree(v));
        }
        for e in h.edge_ids() {
            prop_assert_eq!(b.right_degree(e), h.edge_size(e));
        }
    }
}
