//! A reusable scoped thread pool driven by an atomic chunked work queue.
//!
//! The parallel MoCHy variants (Section 3.4 of the paper) were originally
//! sharded statically: thread `t` processed every `num_threads`-th hyperedge.
//! On skewed-degree hypergraphs that serializes on the thread that happens to
//! own the heaviest hyperedges. The helpers here instead put the hyperedge
//! index space behind a [`ChunkQueue`] — an atomic cursor handing out fixed
//! size blocks — so idle workers steal the remaining blocks and the makespan
//! tracks total work rather than the heaviest shard.
//!
//! Determinism contract: callers must make each *item's* contribution
//! independent of which worker claims it (pure functions of the item index,
//! or order-independent merges such as integer-valued `f64` additions). All
//! users in this workspace satisfy that, which is what makes counting results
//! identical for every thread count.
//!
//! For long-lived services the module also provides [`WorkerPool`] — a
//! persistent pool with a bounded submission queue whose
//! [`WorkerPool::try_execute`] fails fast ([`PoolSaturated`]) instead of
//! blocking, the backpressure primitive behind `mochy-serve`'s 503 handling.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// An atomic work queue over `0..num_items`, handing out blocks of at most
/// `chunk_size` indices.
#[derive(Debug)]
pub struct ChunkQueue {
    cursor: AtomicUsize,
    num_items: usize,
    chunk_size: usize,
}

impl ChunkQueue {
    /// A queue over `0..num_items` with the given block size (min 1).
    pub fn new(num_items: usize, chunk_size: usize) -> Self {
        Self {
            cursor: AtomicUsize::new(0),
            num_items,
            chunk_size: chunk_size.max(1),
        }
    }

    /// Claims the next block, or `None` when the index space is exhausted.
    pub fn claim(&self) -> Option<Range<usize>> {
        let start = self.cursor.fetch_add(self.chunk_size, Ordering::Relaxed);
        if start >= self.num_items {
            return None;
        }
        Some(start..(start + self.chunk_size).min(self.num_items))
    }
}

/// A block size giving every worker several blocks to steal (targets ~8
/// blocks per thread, capped so single blocks stay cache-friendly).
pub fn default_chunk_size(num_items: usize, num_threads: usize) -> usize {
    let target_blocks = num_threads.max(1) * 8;
    (num_items / target_blocks).clamp(1, 1024)
}

/// Runs `fold` over the blocks of `0..num_items` on `num_threads` scoped
/// worker threads, each folding the blocks it claims into a private
/// accumulator created by `init`. Returns the per-worker accumulators
/// (workers that never claimed a block still contribute one).
///
/// With `num_threads <= 1` everything runs on the calling thread — no pool
/// is spun up, so the sequential path has zero synchronization overhead.
pub fn map_reduce_chunks<A, I, F>(
    num_items: usize,
    num_threads: usize,
    chunk_size: usize,
    init: I,
    fold: F,
) -> Vec<A>
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, Range<usize>) + Sync,
{
    let queue = ChunkQueue::new(num_items, chunk_size);
    let workers = num_threads.max(1).min(num_items.max(1));
    if workers <= 1 {
        let mut acc = init();
        while let Some(range) = queue.claim() {
            fold(&mut acc, range);
        }
        return vec![acc];
    }
    let queue = &queue;
    let init = &init;
    let fold = &fold;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut acc = init();
                    while let Some(range) = queue.claim() {
                        fold(&mut acc, range);
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

/// A job submitted to a [`WorkerPool`].
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Error returned by [`WorkerPool::try_execute`] when every worker is busy
/// and the submission queue is full. Carries the rejected job back to the
/// caller so it can be retried or answered with an overload response.
pub struct PoolSaturated(pub Box<dyn FnOnce() + Send + 'static>);

impl std::fmt::Debug for PoolSaturated {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PoolSaturated(..)")
    }
}

/// A persistent worker pool with a **bounded** submission queue.
///
/// [`map_reduce_chunks`] covers the fork-join data-parallel needs of the
/// counting kernels; long-lived services (the `mochy-serve` HTTP front end)
/// instead need a fixed set of resident workers plus *explicit backpressure*:
/// when every worker is busy and the queue is full, submission fails
/// immediately with [`PoolSaturated`] rather than blocking the caller — which
/// is what lets an accept loop shed load (HTTP 503) without ever wedging.
///
/// Workers drain jobs from a shared bounded channel; dropping the pool closes
/// the channel, lets the workers finish the jobs already queued, and joins
/// them.
#[derive(Debug)]
pub struct WorkerPool {
    sender: Option<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// A pool of `workers` resident threads (min 1) whose submission queue
    /// buffers at most `queue_depth` pending jobs beyond the ones being
    /// executed. `queue_depth = 0` is a rendezvous queue: submission only
    /// succeeds while some worker is actually waiting for work.
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        let workers = workers.max(1);
        let (sender, receiver) = sync_channel::<Job>(queue_depth);
        let receiver = Arc::new(Mutex::new(receiver));
        let handles = (0..workers)
            .map(|_| {
                let receiver = Arc::clone(&receiver);
                std::thread::spawn(move || worker_loop(&receiver))
            })
            .collect();
        Self {
            sender: Some(sender),
            workers: handles,
        }
    }

    /// Number of resident worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Submits `job` without blocking. Fails with [`PoolSaturated`] (handing
    /// the job back) when the queue is full.
    pub fn try_execute(&self, job: impl FnOnce() + Send + 'static) -> Result<(), PoolSaturated> {
        let sender = self.sender.as_ref().expect("pool not shut down");
        match sender.try_send(Box::new(job)) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(job)) | Err(TrySendError::Disconnected(job)) => {
                Err(PoolSaturated(job))
            }
        }
    }
}

fn worker_loop(receiver: &Mutex<Receiver<Job>>) {
    loop {
        // Hold the lock only for the dequeue, never while running the job.
        let job = match receiver.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return, // dequeue lock poisoned (cannot happen: no job runs under it)
        };
        match job {
            // A panicking job must not kill the worker: the pool never
            // respawns threads, so without isolation one bad request would
            // permanently shrink a long-lived service's capacity.
            Ok(job) => {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            }
            Err(_) => return, // channel closed: pool is shutting down
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        drop(self.sender.take()); // close the channel; workers drain and exit
        for handle in self.workers.drain(..) {
            // Panicking jobs are isolated in worker_loop, so join failures
            // should not occur; swallow them anyway rather than double-
            // panicking an unwinding drop.
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_covers_index_space_exactly_once() {
        let queue = ChunkQueue::new(100, 7);
        let mut seen = [false; 100];
        while let Some(range) = queue.claim() {
            for i in range {
                assert!(!seen[i], "index {i} handed out twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert!(queue.claim().is_none());
    }

    #[test]
    fn empty_queue_yields_nothing() {
        let queue = ChunkQueue::new(0, 8);
        assert!(queue.claim().is_none());
    }

    #[test]
    fn chunk_size_is_clamped() {
        assert_eq!(ChunkQueue::new(10, 0).chunk_size, 1);
        assert_eq!(default_chunk_size(0, 4), 1);
        assert_eq!(default_chunk_size(10_000_000, 1), 1024);
        assert!(default_chunk_size(1000, 4) >= 1);
    }

    #[test]
    fn map_reduce_sums_match_for_any_thread_count() {
        let n = 10_000usize;
        let expected: u64 = (0..n as u64).sum();
        for threads in [0usize, 1, 2, 3, 8, 33] {
            let partials = map_reduce_chunks(
                n,
                threads,
                default_chunk_size(n, threads),
                || 0u64,
                |acc, range| {
                    for i in range {
                        *acc += i as u64;
                    }
                },
            );
            assert_eq!(partials.iter().sum::<u64>(), expected, "threads {threads}");
        }
    }

    #[test]
    fn worker_pool_runs_jobs_and_reports_saturation() {
        use std::sync::atomic::AtomicU64;
        use std::sync::mpsc::channel;

        let pool = WorkerPool::new(2, 4);
        assert_eq!(pool.num_workers(), 2);
        let counter = Arc::new(AtomicU64::new(0));
        let (done, finished) = channel();
        for i in 0..10u64 {
            let counter = Arc::clone(&counter);
            let done = done.clone();
            // 2 workers + 4 queue slots: submit at most 6 at once, waiting
            // for completions in between.
            while pool
                .try_execute({
                    let counter = Arc::clone(&counter);
                    let done = done.clone();
                    move || {
                        counter.fetch_add(i + 1, Ordering::Relaxed);
                        done.send(()).unwrap();
                    }
                })
                .is_err()
            {
                finished.recv().unwrap();
            }
        }
        drop(pool); // joins workers, so every job has run
        assert_eq!(counter.load(Ordering::Relaxed), (1..=10).sum::<u64>());
    }

    #[test]
    fn worker_pool_survives_panicking_jobs() {
        use std::sync::mpsc::channel;

        let pool = WorkerPool::new(1, 4);
        let (done, finished) = channel();
        for _ in 0..3 {
            while pool.try_execute(|| panic!("job blew up")).is_err() {
                std::thread::yield_now();
            }
        }
        // The single worker absorbed three panics and still runs jobs.
        let mut submitted = false;
        for _ in 0..10_000 {
            let done = done.clone();
            if pool.try_execute(move || done.send(()).unwrap()).is_ok() {
                submitted = true;
                break;
            }
            std::thread::yield_now();
        }
        assert!(submitted, "worker never became available again");
        finished
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("job after panics must still run");
    }

    #[test]
    fn worker_pool_saturation_returns_the_job() {
        use std::sync::mpsc::channel;

        // One worker, zero queue slots (rendezvous): occupy the worker, then
        // every further submission must be rejected immediately.
        let pool = WorkerPool::new(1, 0);
        let (release, gate) = channel::<()>();
        let (started, running) = channel::<()>();
        let mut job: Job = Box::new(move || {
            started.send(()).unwrap();
            gate.recv().unwrap(); // parks the worker until the test releases it
        });
        // With a rendezvous queue, submission only succeeds once the worker
        // is parked in recv; a rejected job is handed back for retry.
        loop {
            match pool.try_execute(job) {
                Ok(()) => break,
                Err(PoolSaturated(rejected)) => {
                    job = rejected;
                    std::thread::yield_now();
                }
            }
        }
        running.recv().unwrap(); // the worker is now busy
        let rejected = pool
            .try_execute(|| unreachable!("saturated pool must not run the job"))
            .expect_err("pool must be saturated");
        drop(rejected); // the job is handed back and never runs
        release.send(()).unwrap(); // unpark the worker so Drop can join it
    }

    #[test]
    fn skewed_work_is_balanced_across_workers() {
        // One "heavy" prefix: static sharding by stride would put all heavy
        // items on a few threads; the queue hands blocks to whichever worker
        // is free. We only verify correctness of coverage here (timing is
        // exercised by the fig10 bench).
        let n = 4096usize;
        let partials = map_reduce_chunks(
            n,
            8,
            16,
            || 0u64,
            |acc, range| {
                for i in range {
                    // Quadratic work on the first block to skew the load.
                    let reps = if i < 64 { 500 } else { 1 };
                    let mut x = i as u64;
                    for _ in 0..reps {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                    *acc = acc.wrapping_add(x % 7);
                }
            },
        );
        // The merged result is deterministic even though scheduling is not.
        let merged: u64 = partials.iter().sum();
        let reference: u64 = map_reduce_chunks(
            n,
            1,
            16,
            || 0u64,
            |acc, range| {
                for i in range {
                    let reps = if i < 64 { 500 } else { 1 };
                    let mut x = i as u64;
                    for _ in 0..reps {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                    *acc = acc.wrapping_add(x % 7);
                }
            },
        )
        .iter()
        .sum();
        assert_eq!(merged, reference);
    }
}
