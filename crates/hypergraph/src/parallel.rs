//! A reusable scoped thread pool driven by an atomic chunked work queue.
//!
//! The parallel MoCHy variants (Section 3.4 of the paper) were originally
//! sharded statically: thread `t` processed every `num_threads`-th hyperedge.
//! On skewed-degree hypergraphs that serializes on the thread that happens to
//! own the heaviest hyperedges. The helpers here instead put the hyperedge
//! index space behind a [`ChunkQueue`] — an atomic cursor handing out fixed
//! size blocks — so idle workers steal the remaining blocks and the makespan
//! tracks total work rather than the heaviest shard.
//!
//! Determinism contract: callers must make each *item's* contribution
//! independent of which worker claims it (pure functions of the item index,
//! or order-independent merges such as integer-valued `f64` additions). All
//! users in this workspace satisfy that, which is what makes counting results
//! identical for every thread count.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// An atomic work queue over `0..num_items`, handing out blocks of at most
/// `chunk_size` indices.
#[derive(Debug)]
pub struct ChunkQueue {
    cursor: AtomicUsize,
    num_items: usize,
    chunk_size: usize,
}

impl ChunkQueue {
    /// A queue over `0..num_items` with the given block size (min 1).
    pub fn new(num_items: usize, chunk_size: usize) -> Self {
        Self {
            cursor: AtomicUsize::new(0),
            num_items,
            chunk_size: chunk_size.max(1),
        }
    }

    /// Claims the next block, or `None` when the index space is exhausted.
    pub fn claim(&self) -> Option<Range<usize>> {
        let start = self.cursor.fetch_add(self.chunk_size, Ordering::Relaxed);
        if start >= self.num_items {
            return None;
        }
        Some(start..(start + self.chunk_size).min(self.num_items))
    }
}

/// A block size giving every worker several blocks to steal (targets ~8
/// blocks per thread, capped so single blocks stay cache-friendly).
pub fn default_chunk_size(num_items: usize, num_threads: usize) -> usize {
    let target_blocks = num_threads.max(1) * 8;
    (num_items / target_blocks).clamp(1, 1024)
}

/// Runs `fold` over the blocks of `0..num_items` on `num_threads` scoped
/// worker threads, each folding the blocks it claims into a private
/// accumulator created by `init`. Returns the per-worker accumulators
/// (workers that never claimed a block still contribute one).
///
/// With `num_threads <= 1` everything runs on the calling thread — no pool
/// is spun up, so the sequential path has zero synchronization overhead.
pub fn map_reduce_chunks<A, I, F>(
    num_items: usize,
    num_threads: usize,
    chunk_size: usize,
    init: I,
    fold: F,
) -> Vec<A>
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, Range<usize>) + Sync,
{
    let queue = ChunkQueue::new(num_items, chunk_size);
    let workers = num_threads.max(1).min(num_items.max(1));
    if workers <= 1 {
        let mut acc = init();
        while let Some(range) = queue.claim() {
            fold(&mut acc, range);
        }
        return vec![acc];
    }
    let queue = &queue;
    let init = &init;
    let fold = &fold;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || {
                    let mut acc = init();
                    while let Some(range) = queue.claim() {
                        fold(&mut acc, range);
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_covers_index_space_exactly_once() {
        let queue = ChunkQueue::new(100, 7);
        let mut seen = [false; 100];
        while let Some(range) = queue.claim() {
            for i in range {
                assert!(!seen[i], "index {i} handed out twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert!(queue.claim().is_none());
    }

    #[test]
    fn empty_queue_yields_nothing() {
        let queue = ChunkQueue::new(0, 8);
        assert!(queue.claim().is_none());
    }

    #[test]
    fn chunk_size_is_clamped() {
        assert_eq!(ChunkQueue::new(10, 0).chunk_size, 1);
        assert_eq!(default_chunk_size(0, 4), 1);
        assert_eq!(default_chunk_size(10_000_000, 1), 1024);
        assert!(default_chunk_size(1000, 4) >= 1);
    }

    #[test]
    fn map_reduce_sums_match_for_any_thread_count() {
        let n = 10_000usize;
        let expected: u64 = (0..n as u64).sum();
        for threads in [0usize, 1, 2, 3, 8, 33] {
            let partials = map_reduce_chunks(
                n,
                threads,
                default_chunk_size(n, threads),
                || 0u64,
                |acc, range| {
                    for i in range {
                        *acc += i as u64;
                    }
                },
            );
            assert_eq!(partials.iter().sum::<u64>(), expected, "threads {threads}");
        }
    }

    #[test]
    fn skewed_work_is_balanced_across_workers() {
        // One "heavy" prefix: static sharding by stride would put all heavy
        // items on a few threads; the queue hands blocks to whichever worker
        // is free. We only verify correctness of coverage here (timing is
        // exercised by the fig10 bench).
        let n = 4096usize;
        let partials = map_reduce_chunks(
            n,
            8,
            16,
            || 0u64,
            |acc, range| {
                for i in range {
                    // Quadratic work on the first block to skew the load.
                    let reps = if i < 64 { 500 } else { 1 };
                    let mut x = i as u64;
                    for _ in 0..reps {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                    *acc = acc.wrapping_add(x % 7);
                }
            },
        );
        // The merged result is deterministic even though scheduling is not.
        let merged: u64 = partials.iter().sum();
        let reference: u64 = map_reduce_chunks(
            n,
            1,
            16,
            || 0u64,
            |acc, range| {
                for i in range {
                    let reps = if i < 64 { 500 } else { 1 };
                    let mut x = i as u64;
                    for _ in 0..reps {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    }
                    *acc = acc.wrapping_add(x % 7);
                }
            },
        )
        .iter()
        .sum();
        assert_eq!(merged, reference);
    }
}
