//! The immutable [`Hypergraph`] representation.
//!
//! Hyperedges are stored in CSR (compressed sparse row) form: one flat array
//! of node identifiers plus an offset array, so that the members of hyperedge
//! `e` are the slice `edge_nodes[edge_offsets[e] .. edge_offsets[e + 1]]`,
//! always sorted ascending. A second CSR holds the transposed incidence
//! (`E_v`, the hyperedges containing each node), which Algorithm 1 of the
//! paper traverses to build the projected graph.

use crate::csr::Csr;
use crate::error::HypergraphError;

/// Identifier of a node (author, tag, e-mail account, ...).
pub type NodeId = u32;

/// Identifier of a hyperedge (publication, e-mail, post, ...).
pub type EdgeId = u32;

/// An immutable hypergraph `G = (V, E)` in CSR form.
///
/// Construct it through [`crate::HypergraphBuilder`] or [`crate::io`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hypergraph {
    /// Number of nodes. Node identifiers are `0..num_nodes`.
    num_nodes: usize,
    /// Per-edge-sorted node members; row `e` is hyperedge `e`.
    edges: Csr<NodeId>,
    /// Transposed incidence (`E_v`); row `v` lists the hyperedges containing
    /// node `v`, sorted ascending.
    incidence: Csr<EdgeId>,
}

impl Hypergraph {
    /// Builds a hypergraph from per-edge member lists.
    ///
    /// Each member list must be sorted ascending and duplicate-free; this is
    /// an internal constructor used by the builder and the IO layer, which
    /// guarantee that invariant.
    pub(crate) fn from_sorted_edges(
        num_nodes: usize,
        edges: Vec<Vec<NodeId>>,
    ) -> Result<Self, HypergraphError> {
        if edges.is_empty() {
            return Err(HypergraphError::NoEdges);
        }
        let total: usize = edges.iter().map(Vec::len).sum();
        let mut edge_csr = Csr::with_capacity(edges.len(), total);
        for (index, edge) in edges.iter().enumerate() {
            if edge.is_empty() {
                return Err(HypergraphError::EmptyEdge { index });
            }
            debug_assert!(edge.windows(2).all(|w| w[0] < w[1]), "edges must be sorted");
            edge_csr.push_row(edge);
        }

        // Transpose: count node degrees, then fill.
        let mut degrees = vec![0usize; num_nodes];
        for &v in edge_csr.values() {
            degrees[v as usize] += 1;
        }
        let mut node_offsets = Vec::with_capacity(num_nodes + 1);
        node_offsets.push(0usize);
        for d in &degrees {
            node_offsets.push(node_offsets.last().unwrap() + d);
        }
        let mut cursor = node_offsets.clone();
        let mut node_edges = vec![0 as EdgeId; total];
        for (e, edge) in edges.iter().enumerate() {
            for &v in edge {
                node_edges[cursor[v as usize]] = e as EdgeId;
                cursor[v as usize] += 1;
            }
        }
        // Because edges are visited in ascending order, each node's incidence
        // list is already sorted ascending by edge id.
        Ok(Self {
            num_nodes,
            edges: edge_csr,
            incidence: Csr::from_parts(node_offsets, node_edges),
        })
    }

    /// Assembles a hypergraph from CSR parts the caller has already fully
    /// validated (the snapshot reader: offsets monotone and terminated,
    /// rows non-empty and strictly sorted, ids in range, incidence the
    /// exact transpose of the edge list).
    pub(crate) fn from_validated_csr(
        num_nodes: usize,
        edges: Csr<NodeId>,
        incidence: Csr<EdgeId>,
    ) -> Self {
        debug_assert_eq!(incidence.num_rows(), num_nodes);
        debug_assert_eq!(edges.num_entries(), incidence.num_entries());
        Self {
            num_nodes,
            edges,
            incidence,
        }
    }

    /// The raw CSR parts `(edges, incidence)`, for serialization.
    pub(crate) fn csr_parts(&self) -> (&Csr<NodeId>, &Csr<EdgeId>) {
        (&self.edges, &self.incidence)
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of hyperedges `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.num_rows()
    }

    /// Total number of (node, hyperedge) incidences, i.e. `Σ_e |e|`.
    #[inline]
    pub fn num_incidences(&self) -> usize {
        self.edges.num_entries()
    }

    /// The members of hyperedge `e`, sorted ascending.
    ///
    /// # Panics
    /// Panics if `e` is out of range.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &[NodeId] {
        self.edges.row(e as usize)
    }

    /// The size `|e|` of hyperedge `e`.
    #[inline]
    pub fn edge_size(&self, e: EdgeId) -> usize {
        self.edges.row_len(e as usize)
    }

    /// The hyperedges containing node `v` (`E_v`), sorted ascending.
    #[inline]
    pub fn edges_of_node(&self, v: NodeId) -> &[EdgeId] {
        self.incidence.row(v as usize)
    }

    /// The degree of node `v`, i.e. `|E_v|`.
    #[inline]
    pub fn node_degree(&self, v: NodeId) -> usize {
        self.incidence.row_len(v as usize)
    }

    /// Whether hyperedge `e` contains node `v` (binary search on the sorted
    /// member slice).
    #[inline]
    pub fn edge_contains(&self, e: EdgeId, v: NodeId) -> bool {
        self.edge(e).binary_search(&v).is_ok()
    }

    /// Size of the intersection `|e_i ∩ e_j|`, via a linear merge of the two
    /// sorted member slices.
    pub fn intersection_size(&self, i: EdgeId, j: EdgeId) -> usize {
        sorted_intersection_size(self.edge(i), self.edge(j))
    }

    /// Size of the triple intersection `|e_i ∩ e_j ∩ e_k|`.
    ///
    /// Iterates over the smallest of the three edges and checks membership in
    /// the other two, exactly as in the proof of Lemma 2.
    pub fn triple_intersection_size(&self, i: EdgeId, j: EdgeId, k: EdgeId) -> usize {
        let (a, b, c) = (self.edge(i), self.edge(j), self.edge(k));
        // Pick the smallest slice as the outer loop.
        let (smallest, other1, other2) = if a.len() <= b.len() && a.len() <= c.len() {
            (a, b, c)
        } else if b.len() <= a.len() && b.len() <= c.len() {
            (b, a, c)
        } else {
            (c, a, b)
        };
        smallest
            .iter()
            .filter(|&&v| other1.binary_search(&v).is_ok() && other2.binary_search(&v).is_ok())
            .count()
    }

    /// Whether hyperedges `i` and `j` are adjacent, i.e. share at least one
    /// node.
    pub fn are_adjacent(&self, i: EdgeId, j: EdgeId) -> bool {
        sorted_intersects(self.edge(i), self.edge(j))
    }

    /// Iterator over all hyperedge identifiers.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        0..self.num_edges() as EdgeId
    }

    /// Iterator over all node identifiers.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes as NodeId
    }

    /// Iterator over `(EdgeId, &[NodeId])` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &[NodeId])> + '_ {
        self.edge_ids().map(move |e| (e, self.edge(e)))
    }

    /// The maximum hyperedge size, or 0 for an edge-less hypergraph.
    pub fn max_edge_size(&self) -> usize {
        self.edge_ids()
            .map(|e| self.edge_size(e))
            .max()
            .unwrap_or(0)
    }

    /// The per-edge member lists as owned vectors (useful for randomization
    /// and tests).
    pub fn to_edge_lists(&self) -> Vec<Vec<NodeId>> {
        self.edges().map(|(_, members)| members.to_vec()).collect()
    }

    /// The multiset of hyperedge sizes.
    pub fn edge_sizes(&self) -> Vec<usize> {
        self.edge_ids().map(|e| self.edge_size(e)).collect()
    }

    /// The per-node degrees (number of incident hyperedges).
    pub fn node_degrees(&self) -> Vec<usize> {
        self.node_ids().map(|v| self.node_degree(v)).collect()
    }
}

/// When one sorted slice is at least this many times longer than the other,
/// binary probes of the short slice into the long one beat a linear merge
/// (`k · log n` vs `k + n` comparisons).
const GALLOP_RATIO: usize = 8;

/// Size of the intersection of two ascending-sorted slices.
///
/// Degree-ordered hybrid: balanced inputs use a linear merge; skewed inputs
/// (one side ≥ [`GALLOP_RATIO`]× longer) gallop the short slice through the
/// long one with an advancing binary search.
pub fn sorted_intersection_size(a: &[NodeId], b: &[NodeId]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.len().saturating_mul(GALLOP_RATIO) < large.len() {
        return probe_intersection(small, large, false);
    }
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while i < small.len() && j < large.len() {
        match small[i].cmp(&large[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Intersection by probing: every element of the (much shorter) `small`
/// slice is located in `large` by a binary search restricted to the
/// not-yet-passed suffix, so the search window only shrinks. With
/// `early_exit` the scan stops at the first common element (count is then
/// 0 or 1).
fn probe_intersection(small: &[NodeId], large: &[NodeId], early_exit: bool) -> usize {
    let mut lo = 0usize;
    let mut count = 0usize;
    for &v in small {
        lo += large[lo..].partition_point(|&x| x < v);
        if lo >= large.len() {
            break;
        }
        if large[lo] == v {
            count += 1;
            if early_exit {
                break;
            }
            lo += 1;
        }
    }
    count
}

/// Whether two ascending-sorted slices share at least one element. Uses the
/// same hybrid merge/probe strategy as [`sorted_intersection_size`], with
/// early exit on the first common element.
pub fn sorted_intersects(a: &[NodeId], b: &[NodeId]) -> bool {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.len().saturating_mul(GALLOP_RATIO) < large.len() {
        return probe_intersection(small, large, true) > 0;
    }
    let (mut i, mut j) = (0usize, 0usize);
    while i < small.len() && j < large.len() {
        match small[i].cmp(&large[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HypergraphBuilder;

    /// The running example of Figure 2: e1={L,K,F}, e2={L,H,K}, e3={B,G,L},
    /// e4={S,R,F} with L=0, K=1, F=2, H=3, B=4, G=5, S=6, R=7.
    pub(crate) fn figure2() -> Hypergraph {
        HypergraphBuilder::new()
            .with_edge([0u32, 1, 2])
            .with_edge([0, 3, 1])
            .with_edge([4, 5, 0])
            .with_edge([6, 7, 2])
            .build()
            .unwrap()
    }

    #[test]
    fn basic_counts() {
        let h = figure2();
        assert_eq!(h.num_nodes(), 8);
        assert_eq!(h.num_edges(), 4);
        assert_eq!(h.num_incidences(), 12);
        assert_eq!(h.max_edge_size(), 3);
    }

    #[test]
    fn edges_are_sorted() {
        let h = figure2();
        for (_, members) in h.edges() {
            assert!(members.windows(2).all(|w| w[0] < w[1]));
        }
        assert_eq!(h.edge(0), &[0, 1, 2]);
        assert_eq!(h.edge(1), &[0, 1, 3]);
        assert_eq!(h.edge(2), &[0, 4, 5]);
        assert_eq!(h.edge(3), &[2, 6, 7]);
    }

    #[test]
    fn incidence_lists() {
        let h = figure2();
        assert_eq!(h.edges_of_node(0), &[0, 1, 2]); // L appears in e1, e2, e3
        assert_eq!(h.edges_of_node(2), &[0, 3]); // F appears in e1, e4
        assert_eq!(h.edges_of_node(7), &[3]);
        assert_eq!(h.node_degree(0), 3);
        assert_eq!(h.node_degree(6), 1);
    }

    #[test]
    fn membership_and_intersections() {
        let h = figure2();
        assert!(h.edge_contains(0, 2));
        assert!(!h.edge_contains(0, 7));
        assert_eq!(h.intersection_size(0, 1), 2); // {L, K}
        assert_eq!(h.intersection_size(0, 3), 1); // {F}
        assert_eq!(h.intersection_size(1, 3), 0);
        assert!(h.are_adjacent(0, 1));
        assert!(!h.are_adjacent(1, 3));
        assert_eq!(h.triple_intersection_size(0, 1, 2), 1); // {L}
        assert_eq!(h.triple_intersection_size(0, 1, 3), 0);
    }

    #[test]
    fn degree_and_size_vectors() {
        let h = figure2();
        assert_eq!(h.edge_sizes(), vec![3, 3, 3, 3]);
        assert_eq!(h.node_degrees(), vec![3, 2, 2, 1, 1, 1, 1, 1]);
        assert_eq!(
            h.node_degrees().iter().sum::<usize>(),
            h.num_incidences(),
            "degree sum must equal incidence count"
        );
    }

    #[test]
    fn to_edge_lists_round_trips() {
        let h = figure2();
        let lists = h.to_edge_lists();
        let rebuilt = Hypergraph::from_sorted_edges(8, lists).unwrap();
        assert_eq!(h, rebuilt);
    }

    #[test]
    fn empty_edge_rejected() {
        let err = Hypergraph::from_sorted_edges(3, vec![vec![0, 1], vec![]]).unwrap_err();
        assert!(matches!(err, HypergraphError::EmptyEdge { index: 1 }));
    }

    #[test]
    fn no_edges_rejected() {
        let err = Hypergraph::from_sorted_edges(3, vec![]).unwrap_err();
        assert!(matches!(err, HypergraphError::NoEdges));
    }

    #[test]
    fn sorted_helpers() {
        assert_eq!(sorted_intersection_size(&[1, 3, 5], &[2, 3, 5, 7]), 2);
        assert_eq!(sorted_intersection_size(&[], &[1, 2]), 0);
        assert!(sorted_intersects(&[1, 9], &[9]));
        assert!(!sorted_intersects(&[1, 2, 3], &[4, 5]));
    }

    #[test]
    fn hybrid_gallop_matches_merge_on_skewed_inputs() {
        // A 3-element probe against a 1000-element slice takes the galloping
        // path; cross-check it against the naive definition.
        let large: Vec<NodeId> = (0..1000).map(|i| i * 3).collect();
        for small in [
            vec![],
            vec![0],
            vec![1],
            vec![0, 3, 2997],
            vec![2, 4, 5, 2998],
            vec![5000],
        ] {
            let expected = small.iter().filter(|v| large.contains(v)).count();
            assert_eq!(
                sorted_intersection_size(&small, &large),
                expected,
                "small {small:?}"
            );
            assert_eq!(
                sorted_intersection_size(&large, &small),
                expected,
                "swapped {small:?}"
            );
            assert_eq!(sorted_intersects(&small, &large), expected > 0);
            assert_eq!(sorted_intersects(&large, &small), expected > 0);
        }
    }

    #[test]
    fn singleton_edges_allowed() {
        let h = HypergraphBuilder::new()
            .with_edge([0u32])
            .with_edge([0u32, 1])
            .build()
            .unwrap();
        assert_eq!(h.edge_size(0), 1);
        assert_eq!(h.num_nodes(), 2);
        assert!(h.are_adjacent(0, 1));
    }
}
