//! Compact sparse-row (CSR) storage shared by the hypergraph and the
//! projected graph.
//!
//! A [`Csr`] stores a sequence of variable-length rows in two flat arrays:
//! `values` concatenates every row, and `offsets` (length `num_rows + 1`)
//! delimits them, so row `i` is the slice
//! `values[offsets[i] .. offsets[i + 1]]`. Compared with a `Vec<Vec<T>>`
//! this removes one pointer indirection and one heap allocation per row,
//! which is what makes streaming over all hyperedge members (projection,
//! counting) memory-bandwidth-bound instead of allocator-bound.

/// Flat variable-length-row storage: `offsets` + concatenated `values`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Csr<T> {
    offsets: Vec<usize>,
    values: Vec<T>,
}

impl<T> Csr<T> {
    /// An empty CSR with zero rows.
    pub fn new() -> Self {
        Self {
            offsets: vec![0],
            values: Vec::new(),
        }
    }

    /// An empty CSR with capacity reserved for `rows` rows holding `entries`
    /// values in total.
    pub fn with_capacity(rows: usize, entries: usize) -> Self {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        Self {
            offsets,
            values: Vec::with_capacity(entries),
        }
    }

    /// Appends one row, copying `row` onto the end of the value array.
    pub fn push_row(&mut self, row: &[T])
    where
        T: Copy,
    {
        self.values.extend_from_slice(row);
        self.offsets.push(self.values.len());
    }

    /// Appends one row from an iterator.
    pub fn push_row_from_iter(&mut self, row: impl IntoIterator<Item = T>) {
        self.values.extend(row);
        self.offsets.push(self.values.len());
    }

    /// Builds a CSR from explicit parts. `offsets` must start at 0, be
    /// non-decreasing, and end at `values.len()`.
    pub fn from_parts(offsets: Vec<usize>, values: Vec<T>) -> Self {
        debug_assert!(!offsets.is_empty() && offsets[0] == 0);
        debug_assert_eq!(*offsets.last().unwrap(), values.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        Self { offsets, values }
    }

    /// Builds a CSR by concatenating per-row vectors.
    pub fn from_rows<I>(rows: I) -> Self
    where
        I: IntoIterator,
        I::Item: IntoIterator<Item = T>,
    {
        let mut csr = Self::new();
        for row in rows {
            csr.push_row_from_iter(row);
        }
        csr
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of values across all rows.
    #[inline]
    pub fn num_entries(&self) -> usize {
        self.values.len()
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        &self.values[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Length of row `i`.
    #[inline]
    pub fn row_len(&self, i: usize) -> usize {
        self.offsets[i + 1] - self.offsets[i]
    }

    /// The offset array (length `num_rows + 1`).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// The concatenated value array.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Iterator over all rows in order.
    pub fn rows(&self) -> impl Iterator<Item = &[T]> + '_ {
        (0..self.num_rows()).map(move |i| self.row(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_index() {
        let mut csr: Csr<u32> = Csr::with_capacity(3, 6);
        csr.push_row(&[1, 2, 3]);
        csr.push_row(&[]);
        csr.push_row_from_iter([7, 9]);
        assert_eq!(csr.num_rows(), 3);
        assert_eq!(csr.num_entries(), 5);
        assert_eq!(csr.row(0), &[1, 2, 3]);
        assert_eq!(csr.row(1), &[] as &[u32]);
        assert_eq!(csr.row(2), &[7, 9]);
        assert_eq!(csr.row_len(2), 2);
        assert_eq!(csr.offsets(), &[0, 3, 3, 5]);
    }

    #[test]
    fn from_rows_round_trips() {
        let rows = vec![vec![4u32, 5], vec![6], vec![]];
        let csr = Csr::from_rows(rows.clone());
        let back: Vec<Vec<u32>> = csr.rows().map(<[u32]>::to_vec).collect();
        assert_eq!(back, rows);
    }

    #[test]
    fn from_parts_matches_pushes() {
        let mut pushed: Csr<u8> = Csr::new();
        pushed.push_row(&[1]);
        pushed.push_row(&[2, 3]);
        let parts = Csr::from_parts(vec![0, 1, 3], vec![1, 2, 3]);
        assert_eq!(pushed, parts);
    }

    #[test]
    fn empty_csr() {
        let csr: Csr<u32> = Csr::new();
        assert_eq!(csr.num_rows(), 0);
        assert_eq!(csr.num_entries(), 0);
        assert_eq!(csr.rows().count(), 0);
    }
}
