//! Sharded hypergraph storage: contiguous hyperedge slices persisted as
//! per-shard `.mochy` snapshots plus a small checksummed manifest.
//!
//! A shard is a contiguous slice `[edge_start, edge_end)` of the canonical
//! hyperedge order. Slicing by edge id (rather than re-partitioning nodes)
//! keeps shard-local edge identifiers order-isomorphic to the global ones,
//! which is what lets the counting layer prove its scatter-gather merge
//! bit-identical to an unsharded run: every per-instance attribution rule
//! that compares edge ids decides the same way locally and globally.
//!
//! On disk, a sharded dataset with stem `data` is the file family
//!
//! ```text
//! data.shards          the manifest (layout below)
//! data.shard0.mochy    shard 0, a complete .mochy snapshot
//! data.shard1.mochy    shard 1, ...
//! ```
//!
//! Each shard file is a full, independently valid [`crate::snapshot`]
//! snapshot of the sub-hypergraph induced by its edge slice. Node ids are
//! **global** (every shard declares the full `num_nodes`), so node sets and
//! pairwise intersection weights — the only inputs to motif classification —
//! are shard-local facts.
//!
//! # Manifest layout (version 1, all integers little-endian)
//!
//! ```text
//! offset  size             field
//! ------  ---------------  ------------------------------------------
//!      0  8                magic  b"MOCHYSHD"
//!      8  4                format version (u32, currently 1)
//!     12  4                flags (u32, must be 0 in version 1)
//!     16  8                num_shards      (u64)
//!     24  8                num_nodes       (u64)
//!     32  8                num_edges       (u64)
//!     40  8                num_incidences  (u64)
//!     48  num_shards * 32  shard records, each:
//!                            edge_start        (u64)
//!                            edge_end          (u64)
//!                            num_incidences    (u64)
//!                            snapshot_checksum (u64, the shard file's own
//!                                               trailing FNV-1a 64)
//!      .  8                FNV-1a 64 checksum of everything above
//! ```
//!
//! # Validation and trust
//!
//! A manifest is untrusted input exactly like a snapshot, so
//! [`read_manifest_bytes`] follows the same discipline as
//! [`crate::snapshot::read_snapshot_bytes`]: the declared counts must
//! reproduce the byte length through checked arithmetic, the checksum is
//! verified before any structure is interpreted, and every structural
//! invariant (shards contiguous, non-empty, covering `0..num_edges`,
//! incidence counts summing to the total, ids within the 32-bit ceiling)
//! fails as a typed [`ShardError`] — never a panic, never a wrap.
//! [`load_sharded`] additionally cross-checks every shard file against its
//! manifest record (edge span, incidence count, node universe, and the
//! snapshot's own trailing checksum), so a swapped or regenerated shard
//! file cannot silently change counts.
//!
//! # Versioning policy
//!
//! Same as snapshots: the version field is bumped on any layout change and
//! unknown versions are rejected ([`ShardError::UnsupportedVersion`]);
//! version-1 readers require the flags word to be zero.

use std::ops::Range;
use std::path::{Path, PathBuf};

use crate::error::HypergraphError;
use crate::graph::{Hypergraph, NodeId};
use crate::snapshot::{self, SnapshotError};

/// The 8-byte magic prefix of every shard manifest.
pub const SHARD_MAGIC: [u8; 8] = *b"MOCHYSHD";

/// The current (and only) manifest format version.
pub const SHARD_FORMAT_VERSION: u32 = 1;

/// Byte length of the fixed manifest header (magic, version, flags, four
/// counts).
const MANIFEST_HEADER_LEN: usize = 8 + 4 + 4 + 8 + 8 + 8 + 8;

/// Byte length of one shard record (four u64 fields).
const SHARD_RECORD_LEN: usize = 8 + 8 + 8 + 8;

/// Byte length of the trailing checksum.
const CHECKSUM_LEN: usize = 8;

/// The smallest byte length any manifest can have: header plus checksum
/// with zero records (which the structural pass then rejects — a manifest
/// must describe at least one shard).
// mochy-lint: allow(checked-untrusted-arith) reason="const arithmetic over two small literals is evaluated at compile time; overflow is a compile error, not a runtime wrap"
const MIN_MANIFEST_LEN: usize = MANIFEST_HEADER_LEN + CHECKSUM_LEN;

/// Why a shard manifest (or the shard family it names) could not be used.
/// Every variant is a loud, typed error; decoding never panics on malformed
/// bytes.
#[derive(Debug)]
pub enum ShardError {
    /// The manifest is shorter than the fixed header plus checksum.
    Truncated {
        /// Minimum byte length a manifest can have.
        needed: usize,
        /// Actual byte length of the input.
        actual: usize,
    },
    /// The first eight bytes are not [`SHARD_MAGIC`].
    BadMagic,
    /// The version field names a format this reader does not know.
    UnsupportedVersion {
        /// The version the manifest declares.
        found: u32,
    },
    /// The declared counts do not reproduce the actual byte length.
    LengthMismatch {
        /// Byte length the header's counts imply.
        expected: u64,
        /// Actual byte length of the input.
        actual: u64,
    },
    /// The declared counts overflow the addressable size.
    CountOverflow,
    /// The trailing checksum does not match the manifest contents.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum computed over the received bytes.
        computed: u64,
    },
    /// A structural invariant of the manifest is violated.
    Corrupt {
        /// Which section the violation was found in.
        section: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// A shard's `.mochy` file failed to decode or disagrees with its
    /// manifest record.
    Shard {
        /// Zero-based shard index.
        shard: usize,
        /// What went wrong with the shard file.
        error: SnapshotError,
    },
    /// The requested shard count cannot produce non-empty shards.
    InvalidShardCount {
        /// Shards requested.
        requested: usize,
        /// Hyperedges available to slice.
        num_edges: usize,
    },
    /// An underlying IO failure while reading or writing.
    Io(std::io::Error),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Truncated { needed, actual } => write!(
                f,
                "shard manifest truncated: need at least {needed} bytes, got {actual}"
            ),
            ShardError::BadMagic => {
                write!(f, "not a shard manifest (bad magic bytes)")
            }
            ShardError::UnsupportedVersion { found } => write!(
                f,
                "unsupported shard manifest version {found} (this reader knows up to \
                 {SHARD_FORMAT_VERSION})"
            ),
            ShardError::LengthMismatch { expected, actual } => write!(
                f,
                "shard manifest length mismatch: header implies {expected} bytes, got {actual}"
            ),
            ShardError::CountOverflow => {
                write!(f, "shard manifest counts overflow the addressable size")
            }
            ShardError::ChecksumMismatch { stored, computed } => write!(
                f,
                "shard manifest checksum mismatch: trailer says {stored:#018x}, contents hash \
                 to {computed:#018x}"
            ),
            ShardError::Corrupt { section, message } => {
                write!(f, "shard manifest corrupt in {section}: {message}")
            }
            ShardError::Shard { shard, error } => {
                write!(f, "shard {shard}: {error}")
            }
            ShardError::InvalidShardCount {
                requested,
                num_edges,
            } => write!(
                f,
                "cannot split {num_edges} hyperedges into {requested} non-empty shards"
            ),
            ShardError::Io(error) => write!(f, "shard io error: {error}"),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Shard { error, .. } => Some(error),
            ShardError::Io(error) => Some(error),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ShardError {
    fn from(error: std::io::Error) -> Self {
        ShardError::Io(error)
    }
}

impl From<ShardError> for HypergraphError {
    fn from(error: ShardError) -> Self {
        HypergraphError::Sharded(error)
    }
}

/// One shard's manifest record: its edge span, its incidence count, and the
/// trailing FNV-1a 64 checksum of its `.mochy` file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRecord {
    /// First global edge id of the shard (inclusive).
    pub edge_start: u64,
    /// One past the last global edge id of the shard (exclusive).
    pub edge_end: u64,
    /// Total incidences `Σ_e |e|` within the shard.
    pub num_incidences: u64,
    /// The shard file's own trailing FNV-1a 64 checksum, pinned here so a
    /// regenerated or swapped shard file is detected at load time.
    pub snapshot_checksum: u64,
}

/// The validated contents of a shard manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Number of nodes of the full hypergraph (shared by every shard).
    pub num_nodes: u64,
    /// Number of hyperedges of the full hypergraph.
    pub num_edges: u64,
    /// Total incidences of the full hypergraph.
    pub num_incidences: u64,
    /// Per-shard records, in shard order; spans are contiguous, non-empty,
    /// and cover exactly `0..num_edges`.
    pub shards: Vec<ShardRecord>,
}

impl ShardManifest {
    /// Number of shards the manifest describes.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The edge spans of all shards, in shard order.
    pub fn boundaries(&self) -> Vec<Range<usize>> {
        self.shards
            .iter()
            .map(|record| {
                // Lossless: the structural pass admitted only spans within
                // num_edges, which is capped at the 32-bit id ceiling. The
                // saturating fallback keeps this total without a panic path.
                let lo = usize::try_from(record.edge_start).unwrap_or(usize::MAX);
                let hi = usize::try_from(record.edge_end).unwrap_or(usize::MAX);
                lo..hi
            })
            .collect()
    }
}

/// The contiguous edge spans that split `num_edges` hyperedges into
/// `num_shards` balanced shards: shard `s` covers
/// `[s·n/k, (s+1)·n/k)`. Spans are contiguous and cover `0..num_edges`;
/// when `num_shards > num_edges` the trailing spans are empty.
pub fn shard_boundaries(num_edges: usize, num_shards: usize) -> Vec<Range<usize>> {
    let shards = num_shards.max(1);
    let n = num_edges as u128;
    let k = shards as u128;
    let mut boundaries = Vec::with_capacity(shards);
    for s in 0..shards {
        let a = s as u128;
        let lo = a * n / k;
        let b = a.saturating_add(1);
        let hi = b * n / k;
        // Lossless: both quotients are at most n, which came from a usize —
        // the fallback (exact upper bound) keeps this total without a panic.
        let lo = usize::try_from(lo).unwrap_or(num_edges);
        let hi = usize::try_from(hi).unwrap_or(num_edges);
        boundaries.push(lo..hi);
    }
    boundaries
}

/// The sub-hypergraph induced by the contiguous edge slice `range`, keeping
/// the full node universe (node ids are global). Local edge id `e` of the
/// slice corresponds to global edge id `range.start + e`, preserving order.
pub fn edge_slice(
    hypergraph: &Hypergraph,
    range: Range<usize>,
) -> Result<Hypergraph, HypergraphError> {
    if range.end > hypergraph.num_edges() || range.start > range.end {
        return Err(HypergraphError::Sharded(ShardError::Corrupt {
            section: "edge slice",
            message: format!(
                "slice {}..{} out of range for {} hyperedges",
                range.start,
                range.end,
                hypergraph.num_edges()
            ),
        }));
    }
    let mut rows: Vec<Vec<NodeId>> = Vec::with_capacity(range.len());
    for e in range {
        // e < num_edges, which the snapshot/builder layers cap at the 32-bit
        // id ceiling — but propagate a typed error rather than panicking.
        let e =
            u32::try_from(e).map_err(|_| HypergraphError::Sharded(ShardError::CountOverflow))?;
        rows.push(hypergraph.edge(e).to_vec());
    }
    Hypergraph::from_sorted_edges(hypergraph.num_nodes(), rows)
}

/// The path of shard `shard`'s snapshot for a dataset with stem `stem`:
/// `{stem}.shard{shard}.mochy`.
pub fn shard_file_path(stem: &Path, shard: usize) -> PathBuf {
    let name = stem
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    stem.with_file_name(format!("{name}.shard{shard}.mochy"))
}

/// The path of the manifest for a dataset with stem `stem`:
/// `{stem}.shards`.
pub fn manifest_file_path(stem: &Path) -> PathBuf {
    let name = stem
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    stem.with_file_name(format!("{name}.shards"))
}

/// Splits `hypergraph` into `num_shards` contiguous shards, writing
/// `{stem}.shard{k}.mochy` snapshot files plus the `{stem}.shards`
/// manifest, and returns the manifest. Every shard must be non-empty
/// (snapshots reject edge-less hypergraphs), so `num_shards` is capped by
/// the hyperedge count.
pub fn write_shards(
    hypergraph: &Hypergraph,
    stem: &Path,
    num_shards: usize,
) -> Result<ShardManifest, ShardError> {
    let num_edges = hypergraph.num_edges();
    if num_shards == 0 || num_shards > num_edges {
        return Err(ShardError::InvalidShardCount {
            requested: num_shards,
            num_edges,
        });
    }
    let boundaries = shard_boundaries(num_edges, num_shards);
    let mut records = Vec::with_capacity(num_shards);
    for (shard, range) in boundaries.iter().enumerate() {
        let slice = match edge_slice(hypergraph, range.clone()) {
            Ok(slice) => slice,
            Err(error) => {
                return Err(ShardError::Corrupt {
                    section: "edge slice",
                    message: format!("shard {shard}: {error}"),
                })
            }
        };
        let mut bytes = Vec::new();
        snapshot::write_snapshot(&slice, &mut bytes)
            .map_err(|error| ShardError::Shard { shard, error })?;
        let snapshot_checksum = snapshot_trailing_checksum(&bytes);
        std::fs::write(shard_file_path(stem, shard), &bytes)?;
        records.push(ShardRecord {
            edge_start: range.start as u64,
            edge_end: range.end as u64,
            num_incidences: slice.num_incidences() as u64,
            snapshot_checksum,
        });
    }
    let manifest = ShardManifest {
        num_nodes: hypergraph.num_nodes() as u64,
        num_edges: num_edges as u64,
        num_incidences: hypergraph.num_incidences() as u64,
        shards: records,
    };
    write_manifest_file(&manifest, &manifest_file_path(stem))?;
    Ok(manifest)
}

/// The trailing FNV-1a 64 checksum of an encoded snapshot (its last eight
/// bytes). Callers pass bytes the snapshot layer produced or validated, so
/// the trailer is always present.
fn snapshot_trailing_checksum(bytes: &[u8]) -> u64 {
    let tail = bytes.len().saturating_sub(CHECKSUM_LEN);
    snapshot::le_u64(bytes.get(tail..).unwrap_or_default())
}

/// Serializes `manifest` in the version-[`SHARD_FORMAT_VERSION`] layout,
/// including the trailing checksum.
pub fn encode_manifest(manifest: &ShardManifest) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&SHARD_MAGIC);
    bytes.extend_from_slice(&SHARD_FORMAT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes()); // flags
    bytes.extend_from_slice(&(manifest.shards.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&manifest.num_nodes.to_le_bytes());
    bytes.extend_from_slice(&manifest.num_edges.to_le_bytes());
    bytes.extend_from_slice(&manifest.num_incidences.to_le_bytes());
    for record in &manifest.shards {
        bytes.extend_from_slice(&record.edge_start.to_le_bytes());
        bytes.extend_from_slice(&record.edge_end.to_le_bytes());
        bytes.extend_from_slice(&record.num_incidences.to_le_bytes());
        bytes.extend_from_slice(&record.snapshot_checksum.to_le_bytes());
    }
    let checksum = snapshot::fnv1a64(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    bytes
}

/// Writes `manifest` to `path`.
pub fn write_manifest_file(manifest: &ShardManifest, path: &Path) -> Result<(), ShardError> {
    std::fs::write(path, encode_manifest(manifest))?;
    Ok(())
}

/// Little-endian field cursor over the raw manifest bytes; the exact-length
/// check runs before any take, so these cannot fail afterwards — but they
/// still return typed errors, never slice out of bounds.
struct ManifestFields<'a> {
    bytes: &'a [u8],
    position: usize,
}

impl<'a> ManifestFields<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], ShardError> {
        let end = self
            .position
            .checked_add(len)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(ShardError::Truncated {
                needed: self.position.saturating_add(len),
                actual: self.bytes.len(),
            })?;
        let slice = self
            .bytes
            .get(self.position..end)
            .ok_or(ShardError::Truncated {
                needed: end,
                actual: self.bytes.len(),
            })?;
        self.position = end;
        Ok(slice)
    }

    fn take_u32(&mut self) -> Result<u32, ShardError> {
        Ok(snapshot::le_u32(self.take(4)?))
    }

    fn take_u64(&mut self) -> Result<u64, ShardError> {
        Ok(snapshot::le_u64(self.take(8)?))
    }
}

/// The exact byte length a manifest with `num_shards` records must have, or
/// `None` on arithmetic overflow.
fn expected_manifest_len(num_shards: u64) -> Option<u64> {
    let records = num_shards.checked_mul(SHARD_RECORD_LEN as u64)?;
    (MANIFEST_HEADER_LEN as u64)
        .checked_add(records)?
        .checked_add(CHECKSUM_LEN as u64)
}

/// Decodes and fully validates a shard manifest held in memory.
pub fn read_manifest_bytes(bytes: &[u8]) -> Result<ShardManifest, ShardError> {
    if bytes.len() < MIN_MANIFEST_LEN {
        return Err(ShardError::Truncated {
            needed: MIN_MANIFEST_LEN,
            actual: bytes.len(),
        });
    }
    if !bytes.starts_with(&SHARD_MAGIC) {
        return Err(ShardError::BadMagic);
    }
    let mut fields = ManifestFields { bytes, position: 8 };
    let version = fields.take_u32()?;
    if version != SHARD_FORMAT_VERSION {
        return Err(ShardError::UnsupportedVersion { found: version });
    }
    let flags = fields.take_u32()?;
    if flags != 0 {
        return Err(ShardError::Corrupt {
            section: "header",
            message: format!("version-1 flags must be 0, got {flags:#010x}"),
        });
    }
    let num_shards = fields.take_u64()?;
    let num_nodes = fields.take_u64()?;
    let num_edges = fields.take_u64()?;
    let num_incidences = fields.take_u64()?;

    // The declared record count must reproduce the byte length exactly —
    // truncation after the header and trailing garbage both fail loudly
    // before a single record byte is trusted.
    let expected = expected_manifest_len(num_shards).ok_or(ShardError::CountOverflow)?;
    if expected != bytes.len() as u64 {
        return Err(ShardError::LengthMismatch {
            expected,
            actual: bytes.len() as u64,
        });
    }

    // Checksum before structure: a flipped bit is reported as corruption of
    // the manifest, not as whichever invariant it happens to break.
    let payload_end = bytes.len().saturating_sub(CHECKSUM_LEN);
    let stored = snapshot::le_u64(bytes.get(payload_end..).unwrap_or_default());
    let computed = snapshot::fnv1a64(bytes.get(..payload_end).unwrap_or_default());
    if stored != computed {
        return Err(ShardError::ChecksumMismatch { stored, computed });
    }

    if num_shards == 0 {
        return Err(ShardError::Corrupt {
            section: "header",
            message: "manifest declares zero shards".to_string(),
        });
    }
    // Ids are 32-bit on the wire and in the CSR, so counts past the ceiling
    // could never name their own elements; and every shard must be
    // non-empty, so there cannot be more shards than hyperedges.
    if num_nodes > u64::from(u32::MAX) || num_edges > u64::from(u32::MAX) {
        return Err(ShardError::Corrupt {
            section: "header",
            message: format!(
                "counts exceed the 32-bit id space (num_nodes = {num_nodes}, \
                 num_edges = {num_edges})"
            ),
        });
    }
    if num_shards > num_edges {
        return Err(ShardError::Corrupt {
            section: "header",
            message: format!(
                "manifest declares {num_shards} shards over {num_edges} hyperedges; \
                 shards must be non-empty"
            ),
        });
    }

    let shard_rows = usize::try_from(num_shards).map_err(|_| ShardError::CountOverflow)?;
    let mut shards = Vec::with_capacity(shard_rows);
    let mut expected_start = 0u64;
    let mut incidence_total = 0u64;
    for shard in 0..shard_rows {
        let edge_start = fields.take_u64()?;
        let edge_end = fields.take_u64()?;
        let shard_incidences = fields.take_u64()?;
        let snapshot_checksum = fields.take_u64()?;
        if edge_start != expected_start {
            return Err(ShardError::Corrupt {
                section: "records",
                message: format!(
                    "shard {shard} starts at edge {edge_start}, expected {expected_start} \
                     (shards must be contiguous)"
                ),
            });
        }
        if edge_end <= edge_start {
            return Err(ShardError::Corrupt {
                section: "records",
                message: format!(
                    "shard {shard} spans {edge_start}..{edge_end}; shards must be non-empty"
                ),
            });
        }
        if edge_end > num_edges {
            return Err(ShardError::Corrupt {
                section: "records",
                message: format!(
                    "shard {shard} ends at edge {edge_end}, past num_edges {num_edges}"
                ),
            });
        }
        expected_start = edge_end;
        incidence_total = incidence_total
            .checked_add(shard_incidences)
            .ok_or(ShardError::CountOverflow)?;
        shards.push(ShardRecord {
            edge_start,
            edge_end,
            num_incidences: shard_incidences,
            snapshot_checksum,
        });
    }
    if expected_start != num_edges {
        return Err(ShardError::Corrupt {
            section: "records",
            message: format!(
                "shards cover edges 0..{expected_start} but the manifest declares \
                 {num_edges} hyperedges"
            ),
        });
    }
    if incidence_total != num_incidences {
        return Err(ShardError::Corrupt {
            section: "records",
            message: format!(
                "per-shard incidences sum to {incidence_total}, manifest declares \
                 {num_incidences}"
            ),
        });
    }

    Ok(ShardManifest {
        num_nodes,
        num_edges,
        num_incidences,
        shards,
    })
}

/// Reads and validates a shard manifest from `path`.
pub fn read_manifest_file(path: &Path) -> Result<ShardManifest, ShardError> {
    read_manifest_bytes(&std::fs::read(path)?)
}

/// A sharded dataset loaded back from disk: the validated manifest plus one
/// fully validated [`Hypergraph`] per shard, in shard order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedHypergraph {
    manifest: ShardManifest,
    shards: Vec<Hypergraph>,
}

impl ShardedHypergraph {
    /// The validated manifest.
    pub fn manifest(&self) -> &ShardManifest {
        &self.manifest
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard sub-hypergraphs, in shard order.
    pub fn shards(&self) -> &[Hypergraph] {
        &self.shards
    }

    /// Reassembles the full hypergraph by concatenating the shard edge
    /// slices in shard order — the exact inverse of [`write_shards`].
    pub fn assemble(&self) -> Result<Hypergraph, ShardError> {
        let mut rows = Vec::new();
        for shard in &self.shards {
            rows.extend(shard.to_edge_lists());
        }
        let num_nodes =
            usize::try_from(self.manifest.num_nodes).map_err(|_| ShardError::CountOverflow)?;
        Hypergraph::from_sorted_edges(num_nodes, rows).map_err(|error| ShardError::Corrupt {
            section: "shard files",
            message: format!("reassembly failed: {error}"),
        })
    }
}

/// Loads and validates ONE shard's snapshot of the family with stem `stem`
/// against its record in an already-validated `manifest`: the snapshot's own
/// trailing checksum must match the pinned one, and its edge span, incidence
/// count, and node universe must agree with the record. This is the unit a
/// distributed worker boots from — only the shard's own edge slice is read
/// off disk, never the rest of the family.
pub fn load_shard_slice(
    stem: &Path,
    manifest: &ShardManifest,
    shard: usize,
) -> Result<Hypergraph, ShardError> {
    let record = manifest.shards.get(shard).ok_or(ShardError::Corrupt {
        section: "records",
        message: format!(
            "shard {shard} requested but the manifest describes {}",
            manifest.num_shards()
        ),
    })?;
    let bytes = std::fs::read(shard_file_path(stem, shard))?;
    let slice = snapshot::read_snapshot_bytes(&bytes)
        .map_err(|error| ShardError::Shard { shard, error })?;
    let stored = snapshot_trailing_checksum(&bytes);
    if stored != record.snapshot_checksum {
        return Err(ShardError::Corrupt {
            section: "shard files",
            message: format!(
                "shard {shard} checksum {stored:#018x} does not match the manifest's \
                 {:#018x} (file replaced or regenerated?)",
                record.snapshot_checksum
            ),
        });
    }
    // The record's span was validated as non-empty and within the 32-bit
    // ceiling, so the width fits usize without wrapping.
    let span = record.edge_end.saturating_sub(record.edge_start);
    if slice.num_edges() as u64 != span {
        return Err(ShardError::Corrupt {
            section: "shard files",
            message: format!(
                "shard {shard} holds {} hyperedges but its record spans {span}",
                slice.num_edges()
            ),
        });
    }
    if slice.num_incidences() as u64 != record.num_incidences {
        return Err(ShardError::Corrupt {
            section: "shard files",
            message: format!(
                "shard {shard} holds {} incidences but its record declares {}",
                slice.num_incidences(),
                record.num_incidences
            ),
        });
    }
    if slice.num_nodes() as u64 != manifest.num_nodes {
        return Err(ShardError::Corrupt {
            section: "shard files",
            message: format!(
                "shard {shard} declares {} nodes but the manifest declares {} \
                 (shards must keep the global node universe)",
                slice.num_nodes(),
                manifest.num_nodes
            ),
        });
    }
    Ok(slice)
}

/// Loads the shard family with stem `stem`: reads and validates the
/// manifest, then every shard snapshot through [`load_shard_slice`]
/// (cross-checking each against its record — edge span, incidence count,
/// node universe, and the snapshot's own trailing checksum).
pub fn load_sharded(stem: &Path) -> Result<ShardedHypergraph, ShardError> {
    let manifest = read_manifest_file(&manifest_file_path(stem))?;
    let mut shards = Vec::with_capacity(manifest.num_shards());
    for shard in 0..manifest.num_shards() {
        shards.push(load_shard_slice(stem, &manifest, shard)?);
    }
    Ok(ShardedHypergraph { manifest, shards })
}

/// Strips the `.shards` suffix of a manifest path to recover the family's
/// stem (`data.shards` → `data`); the stem is what [`shard_file_path`] and
/// [`load_shard_slice`] key off.
pub fn manifest_stem(manifest_path: &Path) -> Result<PathBuf, ShardError> {
    let name = manifest_path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let stem_name = name
        .strip_suffix(".shards")
        .ok_or_else(|| ShardError::Corrupt {
            section: "manifest path",
            message: format!("manifest path `{name}` does not end in .shards"),
        })?;
    Ok(manifest_path.with_file_name(stem_name))
}

/// Loads a shard family given the path of its **manifest** file (the
/// `{stem}.shards` file): strips the `.shards` suffix to recover the stem
/// ([`manifest_stem`]), then delegates to [`load_sharded`].
pub fn load_sharded_manifest(manifest_path: &Path) -> Result<ShardedHypergraph, ShardError> {
    load_sharded(&manifest_stem(manifest_path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HypergraphBuilder;

    fn figure2() -> Hypergraph {
        HypergraphBuilder::new()
            .with_edge([0u32, 1, 2])
            .with_edge([0, 3, 1])
            .with_edge([4, 5, 0])
            .with_edge([6, 7, 2])
            .build()
            .unwrap()
    }

    fn temp_stem(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mochy_shard_test_{tag}"))
    }

    fn cleanup(stem: &Path, num_shards: usize) {
        std::fs::remove_file(manifest_file_path(stem)).ok();
        for shard in 0..num_shards {
            std::fs::remove_file(shard_file_path(stem, shard)).ok();
        }
    }

    #[test]
    fn boundaries_are_contiguous_and_cover() {
        for (n, k) in [(4usize, 2usize), (10, 3), (7, 7), (5, 1), (3, 8), (0, 2)] {
            let boundaries = shard_boundaries(n, k);
            assert_eq!(boundaries.len(), k.max(1));
            assert_eq!(boundaries.first().unwrap().start, 0);
            assert_eq!(boundaries.last().unwrap().end, n);
            for pair in boundaries.windows(2) {
                assert_eq!(pair[0].end, pair[1].start, "n={n} k={k}");
            }
            if k <= n {
                assert!(boundaries.iter().all(|r| !r.is_empty()), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn edge_slice_preserves_rows_and_node_universe() {
        let h = figure2();
        let slice = edge_slice(&h, 1..3).unwrap();
        assert_eq!(slice.num_edges(), 2);
        assert_eq!(slice.num_nodes(), h.num_nodes());
        assert_eq!(slice.edge(0), h.edge(1));
        assert_eq!(slice.edge(1), h.edge(2));
        assert!(edge_slice(&h, 2..9).is_err());
    }

    #[test]
    fn write_load_assemble_round_trips() {
        let h = figure2();
        for k in [1usize, 2, 3, 4] {
            let stem = temp_stem(&format!("roundtrip_{k}"));
            let manifest = write_shards(&h, &stem, k).unwrap();
            assert_eq!(manifest.num_shards(), k);
            assert_eq!(manifest.num_edges, 4);
            let loaded = load_sharded(&stem).unwrap();
            assert_eq!(loaded.manifest(), &manifest);
            assert_eq!(loaded.num_shards(), k);
            assert_eq!(loaded.assemble().unwrap(), h);
            cleanup(&stem, k);
        }
    }

    #[test]
    fn load_via_manifest_path_works() {
        let h = figure2();
        let stem = temp_stem("via_manifest");
        write_shards(&h, &stem, 2).unwrap();
        let loaded = load_sharded_manifest(&manifest_file_path(&stem)).unwrap();
        assert_eq!(loaded.assemble().unwrap(), h);
        cleanup(&stem, 2);
        assert!(load_sharded_manifest(Path::new("nope.mochy")).is_err());
    }

    #[test]
    fn invalid_shard_counts_are_rejected() {
        let h = figure2();
        let stem = temp_stem("invalid_count");
        assert!(matches!(
            write_shards(&h, &stem, 0),
            Err(ShardError::InvalidShardCount { .. })
        ));
        assert!(matches!(
            write_shards(&h, &stem, 5),
            Err(ShardError::InvalidShardCount { .. })
        ));
    }

    #[test]
    fn manifest_checksum_covers_every_byte() {
        let h = figure2();
        let stem = temp_stem("checksum");
        let manifest = write_shards(&h, &stem, 2).unwrap();
        cleanup(&stem, 2);
        let pristine = encode_manifest(&manifest);
        for position in 0..pristine.len() - CHECKSUM_LEN {
            let mut corrupted = pristine.clone();
            corrupted[position] ^= 0x01;
            assert!(
                read_manifest_bytes(&corrupted).is_err(),
                "flipping byte {position} must not decode cleanly"
            );
        }
    }

    /// Re-encodes a manifest after `patch`, fixing up the checksum so the
    /// structural validation pass (not the checksum) is what rejects it.
    fn encode_patched(manifest: &ShardManifest, patch: impl FnOnce(&mut ShardManifest)) -> Vec<u8> {
        let mut patched = manifest.clone();
        patch(&mut patched);
        encode_manifest(&patched)
    }

    #[test]
    fn structural_violations_are_typed_corruption() {
        let h = figure2();
        let stem = temp_stem("structural");
        let manifest = write_shards(&h, &stem, 2).unwrap();
        cleanup(&stem, 2);

        // Overlapping / non-contiguous spans.
        let bytes = encode_patched(&manifest, |m| m.shards[1].edge_start = 1);
        assert!(matches!(
            read_manifest_bytes(&bytes),
            Err(ShardError::Corrupt {
                section: "records",
                ..
            })
        ));
        // Empty shard.
        let bytes = encode_patched(&manifest, |m| m.shards[0].edge_end = 0);
        assert!(matches!(
            read_manifest_bytes(&bytes),
            Err(ShardError::Corrupt {
                section: "records",
                ..
            })
        ));
        // Spans not covering num_edges.
        let bytes = encode_patched(&manifest, |m| {
            m.shards[1].edge_end = 3;
        });
        assert!(matches!(
            read_manifest_bytes(&bytes),
            Err(ShardError::Corrupt {
                section: "records",
                ..
            })
        ));
        // Incidence sum mismatch.
        let bytes = encode_patched(&manifest, |m| m.shards[0].num_incidences = 99);
        assert!(matches!(
            read_manifest_bytes(&bytes),
            Err(ShardError::Corrupt {
                section: "records",
                ..
            })
        ));
        // More shards than edges.
        let bytes = encode_patched(&manifest, |m| m.num_edges = 1);
        assert!(read_manifest_bytes(&bytes).is_err());
    }

    #[test]
    fn header_violations_are_rejected() {
        let h = figure2();
        let stem = temp_stem("header");
        let manifest = write_shards(&h, &stem, 2).unwrap();
        cleanup(&stem, 2);
        let pristine = encode_manifest(&manifest);

        assert!(matches!(
            read_manifest_bytes(&pristine[..10]),
            Err(ShardError::Truncated { .. })
        ));
        let mut bad_magic = pristine.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            read_manifest_bytes(&bad_magic),
            Err(ShardError::BadMagic)
        ));
        // Unsupported version (checksum untouched on purpose: version is
        // checked before the checksum so readers can bail fast).
        let mut bad_version = pristine.clone();
        bad_version[8..12].copy_from_slice(&9u32.to_le_bytes());
        assert!(matches!(
            read_manifest_bytes(&bad_version),
            Err(ShardError::UnsupportedVersion { found: 9 })
        ));
        // Absurd record count: overflow, no allocation attempted.
        let mut overflow = pristine.clone();
        overflow[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            read_manifest_bytes(&overflow),
            Err(ShardError::CountOverflow) | Err(ShardError::LengthMismatch { .. })
        ));
        // Trailing garbage.
        let mut long = pristine.clone();
        long.push(0);
        assert!(matches!(
            read_manifest_bytes(&long),
            Err(ShardError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn swapped_shard_file_is_detected() {
        let h = figure2();
        let stem = temp_stem("swapped");
        write_shards(&h, &stem, 2).unwrap();
        // Replace shard 1 with a regenerated snapshot of different content
        // but plausible shape: shard 0's file.
        std::fs::copy(shard_file_path(&stem, 0), shard_file_path(&stem, 1)).unwrap();
        let error = load_sharded(&stem).unwrap_err();
        assert!(
            matches!(
                error,
                ShardError::Corrupt {
                    section: "shard files",
                    ..
                }
            ),
            "{error:?}"
        );
        cleanup(&stem, 2);
    }

    #[test]
    fn missing_shard_file_is_io_error() {
        let h = figure2();
        let stem = temp_stem("missing");
        write_shards(&h, &stem, 2).unwrap();
        std::fs::remove_file(shard_file_path(&stem, 1)).unwrap();
        assert!(matches!(load_sharded(&stem), Err(ShardError::Io(_))));
        cleanup(&stem, 2);
    }
}
