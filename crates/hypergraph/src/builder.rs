//! Mutable builder for [`Hypergraph`].

use rustc_hash::FxHashSet;

use crate::error::HypergraphError;
use crate::graph::{Hypergraph, NodeId};

/// Builder that accumulates hyperedges, normalizes them (sorting members and
/// removing duplicate members), optionally removes duplicate hyperedges
/// (as done for Table 2 of the paper), and produces an immutable
/// [`Hypergraph`].
///
/// Node identifiers may be sparse; by default the builder keeps them as-is and
/// sizes `|V|` as `max id + 1`. Call [`HypergraphBuilder::relabel_nodes`] to
/// compact identifiers to `0..|V|`.
#[derive(Debug, Default, Clone)]
pub struct HypergraphBuilder {
    edges: Vec<Vec<NodeId>>,
    dedup_edges: bool,
    relabel: bool,
}

impl HypergraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with capacity for `n` hyperedges.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            edges: Vec::with_capacity(n),
            dedup_edges: false,
            relabel: false,
        }
    }

    /// Adds a hyperedge given by any iterator of node identifiers.
    ///
    /// Duplicate members within the hyperedge are removed; the member order is
    /// irrelevant.
    pub fn add_edge<I>(&mut self, members: I) -> &mut Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        let mut members: Vec<NodeId> = members.into_iter().collect();
        members.sort_unstable();
        members.dedup();
        self.edges.push(members);
        self
    }

    /// Chainable variant of [`HypergraphBuilder::add_edge`].
    pub fn with_edge<I>(mut self, members: I) -> Self
    where
        I: IntoIterator<Item = NodeId>,
    {
        self.add_edge(members);
        self
    }

    /// Adds many hyperedges at once.
    pub fn extend_edges<I, J>(&mut self, edges: I) -> &mut Self
    where
        I: IntoIterator<Item = J>,
        J: IntoIterator<Item = NodeId>,
    {
        for edge in edges {
            self.add_edge(edge);
        }
        self
    }

    /// Removes duplicate hyperedges (same member set) when building, keeping
    /// the first occurrence. The paper removes duplicated hyperedges from all
    /// datasets before analysis (Section 4.1).
    pub fn dedup_hyperedges(mut self, yes: bool) -> Self {
        self.dedup_edges = yes;
        self
    }

    /// Compacts node identifiers to the dense range `0..|V|`, in order of
    /// first appearance.
    pub fn relabel_nodes(mut self, yes: bool) -> Self {
        self.relabel = yes;
        self
    }

    /// Number of hyperedges currently accumulated.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no hyperedges have been added yet.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Finalizes the builder into an immutable [`Hypergraph`].
    ///
    /// # Errors
    /// Returns [`HypergraphError::NoEdges`] if nothing was added and
    /// [`HypergraphError::EmptyEdge`] if any hyperedge has no members.
    pub fn build(self) -> Result<Hypergraph, HypergraphError> {
        let HypergraphBuilder {
            mut edges,
            dedup_edges,
            relabel,
        } = self;

        if edges.is_empty() {
            return Err(HypergraphError::NoEdges);
        }
        for (index, edge) in edges.iter().enumerate() {
            if edge.is_empty() {
                return Err(HypergraphError::EmptyEdge { index });
            }
        }

        if relabel {
            let mut mapping: rustc_hash::FxHashMap<NodeId, NodeId> = Default::default();
            for edge in &mut edges {
                for v in edge.iter_mut() {
                    let next = mapping.len() as NodeId;
                    let id = *mapping.entry(*v).or_insert(next);
                    *v = id;
                }
                // Relabeling may break the sorted order of the members.
                edge.sort_unstable();
            }
        }

        if dedup_edges {
            let mut seen: FxHashSet<Vec<NodeId>> = FxHashSet::default();
            edges.retain(|edge| seen.insert(edge.clone()));
        }

        let num_nodes = edges
            .iter()
            .flat_map(|edge| edge.iter().copied())
            .max()
            .map(|m| m as usize + 1)
            .unwrap_or(0);

        Hypergraph::from_sorted_edges(num_nodes, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn members_are_sorted_and_deduped() {
        let h = HypergraphBuilder::new()
            .with_edge([5u32, 1, 3, 1, 5])
            .build()
            .unwrap();
        assert_eq!(h.edge(0), &[1, 3, 5]);
        assert_eq!(h.num_nodes(), 6);
    }

    #[test]
    fn duplicate_hyperedges_removed_when_requested() {
        let h = HypergraphBuilder::new()
            .with_edge([0u32, 1])
            .with_edge([1u32, 0])
            .with_edge([2u32, 3])
            .dedup_hyperedges(true)
            .build()
            .unwrap();
        assert_eq!(h.num_edges(), 2);
    }

    #[test]
    fn duplicate_hyperedges_kept_by_default() {
        let h = HypergraphBuilder::new()
            .with_edge([0u32, 1])
            .with_edge([1u32, 0])
            .build()
            .unwrap();
        assert_eq!(h.num_edges(), 2);
    }

    #[test]
    fn relabeling_compacts_sparse_ids() {
        let h = HypergraphBuilder::new()
            .with_edge([100u32, 200])
            .with_edge([200u32, 300, 400])
            .relabel_nodes(true)
            .build()
            .unwrap();
        assert_eq!(h.num_nodes(), 4);
        assert_eq!(h.edge(0), &[0, 1]);
        assert_eq!(h.edge(1), &[1, 2, 3]);
    }

    #[test]
    fn without_relabeling_num_nodes_is_max_plus_one() {
        let h = HypergraphBuilder::new()
            .with_edge([7u32, 9])
            .build()
            .unwrap();
        assert_eq!(h.num_nodes(), 10);
        assert_eq!(h.node_degree(8), 0);
    }

    #[test]
    fn empty_builder_fails() {
        assert!(matches!(
            HypergraphBuilder::new().build(),
            Err(HypergraphError::NoEdges)
        ));
    }

    #[test]
    fn empty_edge_fails() {
        let err = HypergraphBuilder::new()
            .with_edge([0u32, 1])
            .with_edge(Vec::<NodeId>::new())
            .build()
            .unwrap_err();
        assert!(matches!(err, HypergraphError::EmptyEdge { index: 1 }));
    }

    #[test]
    fn extend_edges_and_len() {
        let mut b = HypergraphBuilder::with_capacity(4);
        assert!(b.is_empty());
        b.extend_edges(vec![vec![0u32, 1], vec![2, 3], vec![1, 2]]);
        assert_eq!(b.len(), 3);
        let h = b.build().unwrap();
        assert_eq!(h.num_edges(), 3);
    }
}
