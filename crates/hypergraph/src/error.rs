//! Error types for hypergraph construction and IO.

use std::fmt;

/// Errors produced while building, validating, or reading a hypergraph.
#[derive(Debug)]
pub enum HypergraphError {
    /// A hyperedge with no members was supplied.
    EmptyEdge {
        /// Zero-based position of the offending hyperedge in insertion order.
        index: usize,
    },
    /// The hypergraph has no hyperedges at all.
    NoEdges,
    /// A node identifier exceeded the supported maximum (`u32::MAX - 1`).
    NodeIdOverflow {
        /// The offending node identifier.
        node: u64,
    },
    /// A line of an input file could not be parsed.
    Parse {
        /// One-based line number.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// An underlying IO failure.
    Io(std::io::Error),
    /// A binary `.mochy` snapshot could not be decoded.
    Snapshot(crate::snapshot::SnapshotError),
    /// A sharded dataset (manifest or shard family) could not be used.
    Sharded(crate::shard::ShardError),
}

impl fmt::Display for HypergraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HypergraphError::EmptyEdge { index } => {
                write!(f, "hyperedge at position {index} is empty")
            }
            HypergraphError::NoEdges => write!(f, "hypergraph contains no hyperedges"),
            HypergraphError::NodeIdOverflow { node } => {
                write!(f, "node identifier {node} exceeds the supported range")
            }
            HypergraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            HypergraphError::Io(err) => write!(f, "io error: {err}"),
            HypergraphError::Snapshot(err) => write!(f, "{err}"),
            HypergraphError::Sharded(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for HypergraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HypergraphError::Io(err) => Some(err),
            HypergraphError::Snapshot(err) => Some(err),
            HypergraphError::Sharded(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for HypergraphError {
    fn from(err: std::io::Error) -> Self {
        HypergraphError::Io(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_empty_edge() {
        let err = HypergraphError::EmptyEdge { index: 3 };
        assert_eq!(err.to_string(), "hyperedge at position 3 is empty");
    }

    #[test]
    fn display_no_edges() {
        assert_eq!(
            HypergraphError::NoEdges.to_string(),
            "hypergraph contains no hyperedges"
        );
    }

    #[test]
    fn display_overflow() {
        let err = HypergraphError::NodeIdOverflow { node: u64::MAX };
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn display_parse() {
        let err = HypergraphError::Parse {
            line: 7,
            message: "not a number".into(),
        };
        assert!(err.to_string().contains("line 7"));
        assert!(err.to_string().contains("not a number"));
    }

    #[test]
    fn io_error_source_is_preserved() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err = HypergraphError::from(io);
        assert!(std::error::Error::source(&err).is_some());
        assert!(err.to_string().contains("missing"));
    }
}
