//! Empirical distributions of node degrees and hyperedge sizes.
//!
//! The null model of the paper (Section 2.3, Appendix D) is designed to
//! preserve exactly these two distributions; this module provides the
//! machinery for checking how well they are preserved: histograms, CCDFs,
//! summary moments, a discrete power-law exponent fit (maximum likelihood,
//! Clauset-style with fixed `x_min`), the Gini coefficient, and distances
//! between two empirical distributions (total variation and
//! Kolmogorov–Smirnov).

use crate::graph::Hypergraph;

/// An empirical distribution over non-negative integer values (degrees or
/// sizes), stored as a sorted sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmpiricalDistribution {
    values: Vec<usize>,
}

impl EmpiricalDistribution {
    /// Builds a distribution from raw observations. Zero values are kept.
    pub fn new(mut values: Vec<usize>) -> Self {
        values.sort_unstable();
        Self { values }
    }

    /// The node-degree distribution of a hypergraph.
    pub fn node_degrees(hypergraph: &Hypergraph) -> Self {
        Self::new(hypergraph.node_degrees())
    }

    /// The hyperedge-size distribution of a hypergraph.
    pub fn edge_sizes(hypergraph: &Hypergraph) -> Self {
        Self::new(hypergraph.edge_sizes())
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the distribution has no observations.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The sorted observations.
    pub fn values(&self) -> &[usize] {
        &self.values
    }

    /// Smallest observation (0 if empty).
    pub fn min(&self) -> usize {
        self.values.first().copied().unwrap_or(0)
    }

    /// Largest observation (0 if empty).
    pub fn max(&self) -> usize {
        self.values.last().copied().unwrap_or(0)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<usize>() as f64 / self.values.len() as f64
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let mean = self.mean();
        self.values
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / self.values.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) using the nearest-rank method.
    pub fn quantile(&self, q: f64) -> usize {
        if self.values.is_empty() {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.values.len() as f64) * q).ceil() as usize;
        self.values[rank.saturating_sub(1).min(self.values.len() - 1)]
    }

    /// Histogram as `(value, count)` pairs in increasing value order.
    pub fn histogram(&self) -> Vec<(usize, usize)> {
        let mut out: Vec<(usize, usize)> = Vec::new();
        for &v in &self.values {
            match out.last_mut() {
                Some((value, count)) if *value == v => *count += 1,
                _ => out.push((v, 1)),
            }
        }
        out
    }

    /// Complementary cumulative distribution: `(value, P[X ≥ value])` for
    /// every distinct value, in increasing value order.
    pub fn ccdf(&self) -> Vec<(usize, f64)> {
        let n = self.values.len() as f64;
        let histogram = self.histogram();
        let mut remaining = self.values.len();
        let mut out = Vec::with_capacity(histogram.len());
        for (value, count) in histogram {
            out.push((value, remaining as f64 / n));
            remaining -= count;
        }
        out
    }

    /// Probability mass `P[X = value]`.
    pub fn pmf(&self, value: usize) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let lo = self.values.partition_point(|&v| v < value);
        let hi = self.values.partition_point(|&v| v <= value);
        (hi - lo) as f64 / self.values.len() as f64
    }

    /// Gini coefficient of the observations — 0 for perfectly equal values,
    /// approaching 1 for extreme concentration. Heavy-tailed degree
    /// distributions (power laws, Section 1 of the paper) have high Gini.
    pub fn gini(&self) -> f64 {
        let n = self.values.len();
        if n == 0 {
            return 0.0;
        }
        let total: f64 = self.values.iter().map(|&v| v as f64).sum();
        if total == 0.0 {
            return 0.0;
        }
        // For sorted values: G = (2 Σ_i i·x_i) / (n Σ x_i) − (n+1)/n, with i starting at 1.
        let weighted: f64 = self
            .values
            .iter()
            .enumerate()
            .map(|(i, &v)| (i as f64 + 1.0) * v as f64)
            .sum();
        (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
    }

    /// Maximum-likelihood estimate of the exponent `α` of a discrete power
    /// law `P[X = x] ∝ x^{−α}` fitted to the observations ≥ `x_min`, using
    /// the standard continuous approximation
    /// `α ≈ 1 + n / Σ ln(x_i / (x_min − 0.5))`.
    ///
    /// Returns `None` if fewer than two observations are ≥ `x_min` or if
    /// `x_min` is 0.
    pub fn power_law_alpha(&self, x_min: usize) -> Option<f64> {
        if x_min == 0 {
            return None;
        }
        let tail: Vec<usize> = self
            .values
            .iter()
            .copied()
            .filter(|&v| v >= x_min)
            .collect();
        if tail.len() < 2 {
            return None;
        }
        let shift = x_min as f64 - 0.5;
        let log_sum: f64 = tail.iter().map(|&v| (v as f64 / shift).ln()).sum();
        if log_sum <= 0.0 {
            return None;
        }
        Some(1.0 + tail.len() as f64 / log_sum)
    }

    /// Kolmogorov–Smirnov distance between two empirical distributions:
    /// the maximum absolute difference of their CDFs.
    pub fn ks_distance(&self, other: &EmpiricalDistribution) -> f64 {
        if self.values.is_empty() || other.values.is_empty() {
            return if self.values.is_empty() && other.values.is_empty() {
                0.0
            } else {
                1.0
            };
        }
        let max_value = self.max().max(other.max());
        let mut worst: f64 = 0.0;
        let (mut i, mut j) = (0usize, 0usize);
        let (n_a, n_b) = (self.values.len() as f64, other.values.len() as f64);
        for value in 0..=max_value {
            while i < self.values.len() && self.values[i] <= value {
                i += 1;
            }
            while j < other.values.len() && other.values[j] <= value {
                j += 1;
            }
            let diff = (i as f64 / n_a - j as f64 / n_b).abs();
            worst = worst.max(diff);
        }
        worst
    }

    /// Total-variation distance between the two empirical PMFs.
    pub fn total_variation(&self, other: &EmpiricalDistribution) -> f64 {
        let max_value = self.max().max(other.max());
        let mut sum = 0.0;
        for value in 0..=max_value {
            sum += (self.pmf(value) - other.pmf(value)).abs();
        }
        sum / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HypergraphBuilder;

    fn sample() -> EmpiricalDistribution {
        EmpiricalDistribution::new(vec![1, 2, 2, 3, 3, 3, 10])
    }

    #[test]
    fn summary_statistics() {
        let d = sample();
        assert_eq!(d.len(), 7);
        assert_eq!(d.min(), 1);
        assert_eq!(d.max(), 10);
        assert!((d.mean() - 24.0 / 7.0).abs() < 1e-12);
        assert!(d.variance() > 0.0);
        assert_eq!(d.quantile(0.0), 1);
        assert_eq!(d.quantile(0.5), 3);
        assert_eq!(d.quantile(1.0), 10);
    }

    #[test]
    fn histogram_and_ccdf_are_consistent() {
        let d = sample();
        let hist = d.histogram();
        assert_eq!(hist, vec![(1, 1), (2, 2), (3, 3), (10, 1)]);
        let ccdf = d.ccdf();
        assert_eq!(ccdf.len(), 4);
        assert!((ccdf[0].1 - 1.0).abs() < 1e-12);
        assert!((ccdf[3].1 - 1.0 / 7.0).abs() < 1e-12);
        // CCDF is non-increasing.
        assert!(ccdf.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn pmf_sums_to_one() {
        let d = sample();
        let total: f64 = (0..=d.max()).map(|v| d.pmf(v)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((d.pmf(3) - 3.0 / 7.0).abs() < 1e-12);
        assert_eq!(d.pmf(4), 0.0);
    }

    #[test]
    fn gini_of_equal_values_is_zero() {
        let equal = EmpiricalDistribution::new(vec![5; 100]);
        assert!(equal.gini().abs() < 1e-9);
        // A highly skewed distribution has a much larger Gini.
        let mut skewed = vec![1usize; 99];
        skewed.push(1000);
        let skewed = EmpiricalDistribution::new(skewed);
        assert!(skewed.gini() > 0.8);
    }

    #[test]
    fn power_law_alpha_recovers_exponent_roughly() {
        // Draw from a discrete power law with alpha = 2.5 via inverse CDF on
        // a fixed pseudo-random sequence (deterministic, no rand dependency).
        let alpha = 2.5f64;
        let mut values = Vec::new();
        let mut state = 0x12345678u64;
        for _ in 0..20_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((state >> 11) as f64) / ((1u64 << 53) as f64);
            let x = (1.0 - u).powf(-1.0 / (alpha - 1.0));
            values.push(x.floor() as usize);
        }
        let d = EmpiricalDistribution::new(values);
        // Fit on the tail (x_min = 5) where the discretization of the
        // continuous Pareto draw is negligible.
        let estimate = d.power_law_alpha(5).unwrap();
        assert!(
            (estimate - alpha).abs() < 0.35,
            "estimated alpha {estimate} too far from {alpha}"
        );
    }

    #[test]
    fn power_law_alpha_edge_cases() {
        let d = EmpiricalDistribution::new(vec![1, 1, 1]);
        assert!(d.power_law_alpha(0).is_none());
        assert!(d.power_law_alpha(100).is_none());
    }

    #[test]
    fn ks_distance_properties() {
        let a = sample();
        let b = sample();
        assert!(a.ks_distance(&b).abs() < 1e-12);
        let c = EmpiricalDistribution::new(vec![100, 100, 100]);
        assert!(a.ks_distance(&c) > 0.9);
        let empty = EmpiricalDistribution::new(vec![]);
        assert_eq!(empty.ks_distance(&empty), 0.0);
        assert_eq!(a.ks_distance(&empty), 1.0);
    }

    #[test]
    fn total_variation_properties() {
        let a = sample();
        assert!(a.total_variation(&a).abs() < 1e-12);
        let b = EmpiricalDistribution::new(vec![7, 7, 7, 7, 7, 7, 7]);
        assert!((a.total_variation(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_hypergraph_matches_accessors() {
        let h = HypergraphBuilder::new()
            .with_edge([0u32, 1, 2])
            .with_edge([0u32, 1])
            .with_edge([3u32])
            .build()
            .unwrap();
        let degrees = EmpiricalDistribution::node_degrees(&h);
        let sizes = EmpiricalDistribution::edge_sizes(&h);
        assert_eq!(degrees.values(), &[1, 1, 2, 2]);
        assert_eq!(sizes.values(), &[1, 2, 3]);
    }
}
