//! Summary statistics of a hypergraph (the columns of Table 2 of the paper,
//! except the motif counts which live in `mochy-core`).

use serde::{Deserialize, Serialize};

use crate::graph::Hypergraph;

/// Summary statistics of a hypergraph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HypergraphStats {
    /// Number of nodes `|V|` (nodes that appear in at least one hyperedge).
    pub num_nodes: usize,
    /// Number of nodes including isolated identifiers (`max id + 1`).
    pub num_node_ids: usize,
    /// Number of hyperedges `|E|`.
    pub num_edges: usize,
    /// Total number of incidences `Σ|e|`.
    pub num_incidences: usize,
    /// Maximum hyperedge size (the `|e¯|` column of Table 2).
    pub max_edge_size: usize,
    /// Minimum hyperedge size.
    pub min_edge_size: usize,
    /// Mean hyperedge size.
    pub mean_edge_size: f64,
    /// Maximum node degree.
    pub max_node_degree: usize,
    /// Mean node degree over nodes that appear in at least one hyperedge.
    pub mean_node_degree: f64,
    /// Histogram of hyperedge sizes: `size_histogram[s]` is the number of
    /// hyperedges with exactly `s` members.
    pub size_histogram: Vec<usize>,
    /// Histogram of node degrees, truncated at the maximum degree.
    pub degree_histogram: Vec<usize>,
}

impl HypergraphStats {
    /// Computes the statistics of `hypergraph`.
    pub fn compute(hypergraph: &Hypergraph) -> Self {
        let sizes = hypergraph.edge_sizes();
        let degrees = hypergraph.node_degrees();
        let active_nodes = degrees.iter().filter(|&&d| d > 0).count();

        let max_edge_size = sizes.iter().copied().max().unwrap_or(0);
        let min_edge_size = sizes.iter().copied().min().unwrap_or(0);
        let mean_edge_size = if sizes.is_empty() {
            0.0
        } else {
            sizes.iter().sum::<usize>() as f64 / sizes.len() as f64
        };
        let max_node_degree = degrees.iter().copied().max().unwrap_or(0);
        let mean_node_degree = if active_nodes == 0 {
            0.0
        } else {
            degrees.iter().sum::<usize>() as f64 / active_nodes as f64
        };

        let mut size_histogram = vec![0usize; max_edge_size + 1];
        for s in &sizes {
            size_histogram[*s] += 1;
        }
        let mut degree_histogram = vec![0usize; max_node_degree + 1];
        for d in &degrees {
            degree_histogram[*d] += 1;
        }

        Self {
            num_nodes: active_nodes,
            num_node_ids: hypergraph.num_nodes(),
            num_edges: hypergraph.num_edges(),
            num_incidences: hypergraph.num_incidences(),
            max_edge_size,
            min_edge_size,
            mean_edge_size,
            max_node_degree,
            mean_node_degree,
            size_histogram,
            degree_histogram,
        }
    }

    /// Renders a one-line, Table 2 style summary.
    pub fn table_row(&self, name: &str) -> String {
        format!(
            "{name}\t|V|={}\t|E|={}\tmax|e|={}\tmean|e|={:.2}\tmax deg={}\tmean deg={:.2}",
            self.num_nodes,
            self.num_edges,
            self.max_edge_size,
            self.mean_edge_size,
            self.max_node_degree,
            self.mean_node_degree,
        )
    }
}

/// Total variation distance between two discrete distributions given as
/// (possibly unnormalized) histograms. Used to verify that the null model
/// preserves degree/size distributions.
pub fn total_variation_distance(a: &[usize], b: &[usize]) -> f64 {
    let sum_a: f64 = a.iter().sum::<usize>() as f64;
    let sum_b: f64 = b.iter().sum::<usize>() as f64;
    if sum_a == 0.0 || sum_b == 0.0 {
        return if sum_a == sum_b { 0.0 } else { 1.0 };
    }
    let len = a.len().max(b.len());
    let mut distance = 0.0f64;
    for i in 0..len {
        let pa = a.get(i).copied().unwrap_or(0) as f64 / sum_a;
        let pb = b.get(i).copied().unwrap_or(0) as f64 / sum_b;
        distance += (pa - pb).abs();
    }
    distance / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HypergraphBuilder;

    fn sample() -> Hypergraph {
        HypergraphBuilder::new()
            .with_edge([0u32, 1, 2])
            .with_edge([0, 3, 1])
            .with_edge([4, 5, 0])
            .with_edge([2, 6, 7])
            .build()
            .unwrap()
    }

    #[test]
    fn basic_stats() {
        let stats = HypergraphStats::compute(&sample());
        assert_eq!(stats.num_nodes, 8);
        assert_eq!(stats.num_node_ids, 8);
        assert_eq!(stats.num_edges, 4);
        assert_eq!(stats.num_incidences, 12);
        assert_eq!(stats.max_edge_size, 3);
        assert_eq!(stats.min_edge_size, 3);
        assert!((stats.mean_edge_size - 3.0).abs() < 1e-12);
        assert_eq!(stats.max_node_degree, 3);
        assert!((stats.mean_node_degree - 1.5).abs() < 1e-12);
    }

    #[test]
    fn histograms_sum_to_counts() {
        let stats = HypergraphStats::compute(&sample());
        assert_eq!(stats.size_histogram.iter().sum::<usize>(), stats.num_edges);
        assert_eq!(
            stats.degree_histogram.iter().sum::<usize>(),
            stats.num_node_ids
        );
        assert_eq!(stats.size_histogram[3], 4);
    }

    #[test]
    fn isolated_ids_counted_separately() {
        let h = HypergraphBuilder::new()
            .with_edge([0u32, 9])
            .build()
            .unwrap();
        let stats = HypergraphStats::compute(&h);
        assert_eq!(stats.num_nodes, 2);
        assert_eq!(stats.num_node_ids, 10);
    }

    #[test]
    fn table_row_contains_key_figures() {
        let stats = HypergraphStats::compute(&sample());
        let row = stats.table_row("toy");
        assert!(row.contains("toy"));
        assert!(row.contains("|V|=8"));
        assert!(row.contains("|E|=4"));
    }

    #[test]
    fn tvd_identical_is_zero() {
        assert_eq!(total_variation_distance(&[1, 2, 3], &[2, 4, 6]), 0.0);
    }

    #[test]
    fn tvd_disjoint_is_one() {
        let d = total_variation_distance(&[10, 0], &[0, 10]);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tvd_empty_histograms() {
        assert_eq!(total_variation_distance(&[], &[]), 0.0);
        assert_eq!(total_variation_distance(&[0, 0], &[0]), 0.0);
        assert_eq!(total_variation_distance(&[1], &[]), 1.0);
    }

    #[test]
    fn stats_clone_and_eq() {
        let stats = HypergraphStats::compute(&sample());
        let copy = stats.clone();
        assert_eq!(stats, copy);
    }
}
