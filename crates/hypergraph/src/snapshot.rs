//! The `.mochy` binary snapshot format: cold-start loading proportional to
//! I/O, not parsing.
//!
//! Text formats (edge-list, Benson) pay a per-token parse on every load, and
//! then rebuild the CSR arrays and the transposed incidence index from
//! scratch. A `.mochy` snapshot instead serializes the [`Hypergraph`]'s
//! already-hash-free CSR representation directly, so loading is a
//! bounds-checked `Vec` fill plus one linear validation pass — no
//! per-element parsing at all.
//!
//! # On-disk layout (version 1, all integers little-endian)
//!
//! ```text
//! offset  size                    field
//! ------  ----------------------  ---------------------------------------
//!      0  8                       magic  b"MOCHYSNP"
//!      8  4                       format version (u32, currently 1)
//!     12  4                       flags (u32, must be 0 in version 1)
//!     16  8                       num_nodes       (u64)
//!     24  8                       num_edges       (u64)
//!     32  8                       num_incidences  (u64)
//!     40  (num_edges + 1) * 8     edge_offsets      (u64 each)
//!      .  num_incidences * 4      edge_values       (node ids, u32 each)
//!      .  (num_nodes + 1) * 8     incidence_offsets (u64 each)
//!      .  num_incidences * 4      incidence_values  (edge ids, u32 each)
//!      .  8                       FNV-1a 64 checksum of everything above
//! ```
//!
//! # Validation and trust
//!
//! A snapshot is untrusted input (the serve layer ingests client uploads),
//! so [`read_snapshot_bytes`] validates **everything** before constructing a
//! hypergraph, and every failure is a typed [`SnapshotError`] — never a
//! panic, never an out-of-bounds index:
//!
//! - magic, version, flags, and the trailing checksum;
//! - the declared counts must reproduce the exact file length (checked
//!   arithmetic, so absurd counts fail with [`SnapshotError::CountOverflow`]
//!   instead of wrapping);
//! - both offset arrays must start at 0, be non-decreasing, and end at
//!   `num_incidences`;
//! - every hyperedge row must be non-empty, strictly sorted, and name only
//!   nodes below `num_nodes`;
//! - the incidence section must be the *exact transpose* of the hyperedge
//!   section (verified with a single cursor pass), so an internally
//!   inconsistent file cannot silently produce wrong motif counts.
//!
//! # Versioning policy
//!
//! The version field is bumped on any layout change; readers reject
//! versions they do not know ([`SnapshotError::UnsupportedVersion`]) rather
//! than guessing. Version-1 readers require the flags word to be zero, so
//! flags cannot be used to smuggle in incompatible layout variations.

use std::io::{Read, Write};
use std::path::Path;

use crate::csr::Csr;
use crate::error::HypergraphError;
use crate::graph::{EdgeId, Hypergraph, NodeId};

/// The 8-byte magic prefix of every `.mochy` snapshot.
pub const MAGIC: [u8; 8] = *b"MOCHYSNP";

/// The current (and only) snapshot format version.
pub const FORMAT_VERSION: u32 = 1;

/// Byte length of the fixed header (magic, version, flags, three counts).
const HEADER_LEN: usize = 8 + 4 + 4 + 8 + 8 + 8;

/// Byte length of the trailing checksum.
const CHECKSUM_LEN: usize = 8;

/// The smallest byte length any snapshot can have: a full header plus the
/// trailing checksum, with every payload section empty.
// mochy-lint: allow(checked-untrusted-arith) reason="const arithmetic over two small literals is evaluated at compile time; overflow is a compile error, not a runtime wrap"
const MIN_SNAPSHOT_LEN: usize = HEADER_LEN + CHECKSUM_LEN;

/// Why a snapshot could not be decoded. Every variant is a loud, typed
/// error; decoding never panics on malformed bytes.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file is shorter than the fixed header plus checksum.
    Truncated {
        /// Minimum byte length a snapshot can have.
        needed: usize,
        /// Actual byte length of the input.
        actual: usize,
    },
    /// The first eight bytes are not [`MAGIC`].
    BadMagic,
    /// The version field names a format this reader does not know.
    UnsupportedVersion {
        /// The version the file declares.
        found: u32,
    },
    /// The declared counts do not reproduce the actual file length (covers
    /// both truncated and over-long files).
    LengthMismatch {
        /// Byte length the header's counts imply.
        expected: u64,
        /// Actual byte length of the input.
        actual: u64,
    },
    /// The declared counts overflow the addressable size (`u64`/`usize`
    /// arithmetic would wrap) — no allocation is attempted.
    CountOverflow,
    /// The trailing checksum does not match the file contents.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum computed over the received bytes.
        computed: u64,
    },
    /// A structural invariant of the payload is violated.
    Corrupt {
        /// Which section the violation was found in.
        section: &'static str,
        /// Human-readable description of the violation.
        message: String,
    },
    /// An underlying IO failure while reading or writing.
    Io(std::io::Error),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated { needed, actual } => write!(
                f,
                "snapshot truncated: need at least {needed} bytes, got {actual}"
            ),
            SnapshotError::BadMagic => {
                write!(f, "not a .mochy snapshot (bad magic bytes)")
            }
            SnapshotError::UnsupportedVersion { found } => write!(
                f,
                "unsupported snapshot version {found} (this reader knows up to \
                 {FORMAT_VERSION})"
            ),
            SnapshotError::LengthMismatch { expected, actual } => write!(
                f,
                "snapshot length mismatch: header implies {expected} bytes, got {actual}"
            ),
            SnapshotError::CountOverflow => {
                write!(f, "snapshot header counts overflow the addressable size")
            }
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: trailer says {stored:#018x}, contents hash to \
                 {computed:#018x}"
            ),
            SnapshotError::Corrupt { section, message } => {
                write!(f, "snapshot corrupt in {section}: {message}")
            }
            SnapshotError::Io(error) => write!(f, "snapshot io error: {error}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(error) => Some(error),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(error: std::io::Error) -> Self {
        SnapshotError::Io(error)
    }
}

impl From<SnapshotError> for HypergraphError {
    fn from(error: SnapshotError) -> Self {
        HypergraphError::Snapshot(error)
    }
}

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds `bytes` into a running FNV-1a 64 state — dependency-free, fast
/// enough to be I/O-bound, and sensitive to every byte (this is an
/// integrity check against corruption and truncation, not a cryptographic
/// signature).
fn fnv1a64_update(mut hash: u64, bytes: &[u8]) -> u64 {
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// FNV-1a 64-bit of `bytes` in one shot (the read path has the whole file
/// in memory anyway). Shared with the shard-manifest reader/writer
/// ([`crate::shard`]), which uses the same trailer discipline.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_update(FNV_OFFSET, bytes)
}

/// Streams sections to the writer in bounded chunks while folding them into
/// the running checksum, so serialization never holds a second full copy of
/// the CSR data in memory.
struct ChecksumWriter<W: Write> {
    writer: W,
    hash: u64,
    buffer: Vec<u8>,
}

/// Flush threshold of [`ChecksumWriter`] — large enough to amortize the
/// underlying write calls, small enough to keep peak extra memory trivial.
const WRITE_CHUNK: usize = 64 * 1024;

impl<W: Write> ChecksumWriter<W> {
    fn new(writer: W) -> Self {
        Self {
            writer,
            hash: FNV_OFFSET,
            buffer: Vec::with_capacity(WRITE_CHUNK),
        }
    }

    fn push(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        self.buffer.extend_from_slice(bytes);
        if self.buffer.len() >= WRITE_CHUNK {
            self.drain()?;
        }
        Ok(())
    }

    fn drain(&mut self) -> Result<(), SnapshotError> {
        self.hash = fnv1a64_update(self.hash, &self.buffer);
        self.writer.write_all(&self.buffer)?;
        self.buffer.clear();
        Ok(())
    }

    /// Flushes pending bytes, appends the checksum trailer (which is not
    /// itself checksummed), and flushes the writer.
    fn finish(mut self) -> Result<(), SnapshotError> {
        self.drain()?;
        self.writer.write_all(&self.hash.to_le_bytes())?;
        self.writer.flush()?;
        Ok(())
    }
}

/// Serializes `hypergraph` as a version-[`FORMAT_VERSION`] snapshot.
///
/// The writer receives the complete byte stream including the trailing
/// checksum; the caller decides about buffering (the file-path helper wraps
/// a [`std::io::BufWriter`]).
pub fn write_snapshot<W: Write>(hypergraph: &Hypergraph, writer: W) -> Result<(), SnapshotError> {
    let (edges, incidence) = hypergraph.csr_parts();
    let mut out = ChecksumWriter::new(writer);
    out.push(&MAGIC)?;
    out.push(&FORMAT_VERSION.to_le_bytes())?;
    out.push(&0u32.to_le_bytes())?; // flags
    out.push(&(hypergraph.num_nodes() as u64).to_le_bytes())?;
    out.push(&(hypergraph.num_edges() as u64).to_le_bytes())?;
    out.push(&(hypergraph.num_incidences() as u64).to_le_bytes())?;
    for &offset in edges.offsets() {
        out.push(&(offset as u64).to_le_bytes())?;
    }
    for &node in edges.values() {
        out.push(&node.to_le_bytes())?;
    }
    for &offset in incidence.offsets() {
        out.push(&(offset as u64).to_le_bytes())?;
    }
    for &edge in incidence.values() {
        out.push(&edge.to_le_bytes())?;
    }
    out.finish()
}

/// Writes a snapshot to `path` (buffered).
pub fn write_snapshot_file<P: AsRef<Path>>(
    hypergraph: &Hypergraph,
    path: P,
) -> Result<(), SnapshotError> {
    let file = std::fs::File::create(path)?;
    write_snapshot(hypergraph, std::io::BufWriter::new(file))
}

/// Little-endian field cursor over the raw snapshot bytes. All bounds are
/// pre-validated against the header counts, so the takes cannot fail after
/// [`validate_length`] — but they still return typed errors, never slice
/// out of bounds.
struct Fields<'a> {
    bytes: &'a [u8],
    position: usize,
}

impl<'a> Fields<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .position
            .checked_add(len)
            .filter(|&end| end <= self.bytes.len())
            .ok_or(SnapshotError::Truncated {
                needed: self.position.saturating_add(len),
                actual: self.bytes.len(),
            })?;
        let slice = self
            .bytes
            .get(self.position..end)
            .ok_or(SnapshotError::Truncated {
                needed: end,
                actual: self.bytes.len(),
            })?;
        self.position = end;
        Ok(slice)
    }

    fn take_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(le_u32(self.take(4)?))
    }

    fn take_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(le_u64(self.take(8)?))
    }

    /// Bulk-decodes `count` little-endian u64s (the offset arrays).
    fn take_u64s(&mut self, count: usize) -> Result<Vec<u64>, SnapshotError> {
        let raw = self.take(count.checked_mul(8).ok_or(SnapshotError::CountOverflow)?)?;
        Ok(raw.chunks_exact(8).map(le_u64).collect())
    }

    /// Bulk-decodes `count` little-endian u32s (the value arrays).
    fn take_u32s(&mut self, count: usize) -> Result<Vec<u32>, SnapshotError> {
        let raw = self.take(count.checked_mul(4).ok_or(SnapshotError::CountOverflow)?)?;
        Ok(raw.chunks_exact(4).map(le_u32).collect())
    }
}

/// Folds up to eight little-endian bytes into a `u64`. A total function —
/// no indexing, no fixed-size conversion to panic — so callers that have
/// already length-checked their slice need no `expect`. Short slices
/// zero-extend, which never arises on the validated paths here.
pub(crate) fn le_u64(bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .rev()
        .fold(0u64, |acc, &byte| (acc << 8) | u64::from(byte))
}

/// Four-byte sibling of [`le_u64`].
pub(crate) fn le_u32(bytes: &[u8]) -> u32 {
    bytes
        .iter()
        .rev()
        .fold(0u32, |acc, &byte| (acc << 8) | u32::from(byte))
}

/// The exact byte length a snapshot with these counts must have, or `None`
/// on arithmetic overflow.
fn expected_len(num_nodes: u64, num_edges: u64, num_incidences: u64) -> Option<u64> {
    let offsets = num_edges
        .checked_add(1)?
        .checked_add(num_nodes.checked_add(1)?)?
        .checked_mul(8)?;
    let values = num_incidences.checked_mul(8)?; // two u32 arrays
    (MIN_SNAPSHOT_LEN as u64)
        .checked_add(offsets)?
        .checked_add(values)
}

/// Converts a little-endian u64 offset array into the `usize` offsets of a
/// [`Csr`], validating monotonicity and the terminal entry.
fn decode_offsets(
    raw: Vec<u64>,
    num_incidences: u64,
    section: &'static str,
) -> Result<Vec<usize>, SnapshotError> {
    let corrupt = |message: String| SnapshotError::Corrupt { section, message };
    if raw.first() != Some(&0) {
        return Err(corrupt(format!(
            "offset array must start at 0, starts at {:?}",
            raw.first()
        )));
    }
    if raw.last() != Some(&num_incidences) {
        return Err(corrupt(format!(
            "offset array must end at num_incidences ({num_incidences}), ends at {:?}",
            raw.last()
        )));
    }
    let mut offsets = Vec::with_capacity(raw.len());
    let mut previous = 0u64;
    for (index, &offset) in raw.iter().enumerate() {
        if offset < previous {
            return Err(corrupt(format!(
                "offsets must be non-decreasing, offset[{index}] = {offset} after {previous}"
            )));
        }
        previous = offset;
        offsets.push(usize::try_from(offset).map_err(|_| SnapshotError::CountOverflow)?);
    }
    Ok(offsets)
}

/// Decodes and fully validates a snapshot held in memory.
pub fn read_snapshot_bytes(bytes: &[u8]) -> Result<Hypergraph, SnapshotError> {
    if bytes.len() < MIN_SNAPSHOT_LEN {
        return Err(SnapshotError::Truncated {
            needed: MIN_SNAPSHOT_LEN,
            actual: bytes.len(),
        });
    }
    if !bytes.starts_with(&MAGIC) {
        return Err(SnapshotError::BadMagic);
    }
    let mut fields = Fields { bytes, position: 8 };
    let version = fields.take_u32()?;
    if version != FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    let flags = fields.take_u32()?;
    if flags != 0 {
        return Err(SnapshotError::Corrupt {
            section: "header",
            message: format!("version-1 flags must be 0, got {flags:#010x}"),
        });
    }
    let num_nodes = fields.take_u64()?;
    let num_edges = fields.take_u64()?;
    let num_incidences = fields.take_u64()?;

    // The counts must reproduce the byte length exactly — this is what turns
    // truncation anywhere after the header, and any trailing garbage, into a
    // loud error before a single payload byte is trusted.
    let expected =
        expected_len(num_nodes, num_edges, num_incidences).ok_or(SnapshotError::CountOverflow)?;
    if expected != bytes.len() as u64 {
        return Err(SnapshotError::LengthMismatch {
            expected,
            actual: bytes.len() as u64,
        });
    }

    // Checksum before structure: a flipped bit should be reported as
    // corruption of the file, not as whichever invariant it happens to break.
    // Cannot underflow: the minimum-length check above already admitted only
    // buffers of at least MIN_SNAPSHOT_LEN (> CHECKSUM_LEN) bytes.
    let payload_end = bytes.len().saturating_sub(CHECKSUM_LEN);
    let stored = le_u64(bytes.get(payload_end..).unwrap_or_default());
    let computed = fnv1a64(bytes.get(..payload_end).unwrap_or_default());
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch { stored, computed });
    }

    // Node and edge ids are 32-bit both on the wire and in the CSR, so a
    // snapshot declaring more than u32::MAX of either could never name its
    // own elements — and the transpose check below compares `edge as EdgeId`,
    // which must not truncate. Reject oversized counts as corruption before
    // any id is materialised.
    if num_nodes > u64::from(u32::MAX) || num_edges > u64::from(u32::MAX) {
        return Err(SnapshotError::Corrupt {
            section: "header",
            message: format!(
                "counts exceed the 32-bit id space (num_nodes = {num_nodes}, \
                 num_edges = {num_edges})"
            ),
        });
    }

    let num_nodes = usize::try_from(num_nodes).map_err(|_| SnapshotError::CountOverflow)?;
    let edge_rows = usize::try_from(num_edges).map_err(|_| SnapshotError::CountOverflow)?;
    let entries = usize::try_from(num_incidences).map_err(|_| SnapshotError::CountOverflow)?;
    if edge_rows == 0 {
        return Err(SnapshotError::Corrupt {
            section: "header",
            message: "snapshot declares zero hyperedges; hypergraphs are non-empty".to_string(),
        });
    }

    let edge_offsets = decode_offsets(
        fields.take_u64s(
            edge_rows
                .checked_add(1)
                .ok_or(SnapshotError::CountOverflow)?,
        )?,
        num_incidences,
        "edge offsets",
    )?;
    let edge_values: Vec<NodeId> = fields.take_u32s(entries)?;
    let incidence_offsets = decode_offsets(
        fields.take_u64s(
            num_nodes
                .checked_add(1)
                .ok_or(SnapshotError::CountOverflow)?,
        )?,
        num_incidences,
        "incidence offsets",
    )?;
    let incidence_values: Vec<EdgeId> = fields.take_u32s(entries)?;

    // Per-edge rows: non-empty, strictly sorted, in node range. Offsets were
    // proved non-decreasing and bounded by num_incidences in decode_offsets,
    // so the row lookups cannot fail — but they stay fallible (`.get`) rather
    // than indexing, with a typed error on the impossible branch.
    let row_bounds = |edge: usize| SnapshotError::Corrupt {
        section: "edge values",
        message: format!("hyperedge {edge} has out-of-range row bounds"),
    };
    let edge_rows_iter = edge_offsets.iter().zip(edge_offsets.iter().skip(1));
    for (edge, (&row_start, &row_end)) in edge_rows_iter.clone().enumerate() {
        let row = edge_values
            .get(row_start..row_end)
            .ok_or_else(|| row_bounds(edge))?;
        if row.is_empty() {
            return Err(SnapshotError::Corrupt {
                section: "edge values",
                message: format!("hyperedge {edge} is empty"),
            });
        }
        for (first, second) in row.iter().zip(row.iter().skip(1)) {
            if first >= second {
                return Err(SnapshotError::Corrupt {
                    section: "edge values",
                    message: format!(
                        "hyperedge {edge} is not strictly sorted ({first} then {second})"
                    ),
                });
            }
        }
        if let Some(&node) = row.last() {
            // mochy-lint: allow(checked-untrusted-arith) reason="NodeId is u32 and usize is at least 32 bits on every supported platform, so the widening cast is lossless"
            if node as usize >= num_nodes {
                return Err(SnapshotError::Corrupt {
                    section: "edge values",
                    message: format!(
                        "hyperedge {edge} names node {node}, but num_nodes is {num_nodes}"
                    ),
                });
            }
        }
    }

    // The incidence section must be the exact transpose of the edge section.
    // One cursor pass verifies it completely: walking the edges in ascending
    // id order must reproduce each node's incidence row left to right.
    let mut cursors: Vec<usize> = incidence_offsets
        .get(..num_nodes)
        .unwrap_or_default()
        .to_vec();
    let transpose_mismatch = |node: usize, edge: usize| SnapshotError::Corrupt {
        section: "incidence values",
        message: format!(
            "incidence index is not the transpose of the hyperedge list \
             (node {node}, hyperedge {edge})"
        ),
    };
    for (edge, (&row_start, &row_end)) in edge_rows_iter.enumerate() {
        let row = edge_values
            .get(row_start..row_end)
            .ok_or_else(|| row_bounds(edge))?;
        for &node in row {
            // mochy-lint: allow(checked-untrusted-arith) reason="NodeId is u32 and usize is at least 32 bits on every supported platform, so the widening cast is lossless"
            let node = node as usize;
            // Every `.get` below is proved in range by the per-edge row check
            // above (node < num_nodes, and cursors/incidence_offsets carry
            // num_nodes / num_nodes + 1 entries); a miss still reports the
            // transpose mismatch rather than indexing.
            let cursor = cursors
                .get(node)
                .copied()
                .ok_or_else(|| transpose_mismatch(node, edge))?;
            let incidence_row_end = incidence_offsets
                .get(node.saturating_add(1))
                .copied()
                .ok_or_else(|| transpose_mismatch(node, edge))?;
            if cursor >= incidence_row_end
                || incidence_values.get(cursor) != Some(&(edge as EdgeId))
            {
                return Err(transpose_mismatch(node, edge));
            }
            if let Some(slot) = cursors.get_mut(node) {
                // Bounded by `cursor < incidence_row_end` above, so no wrap.
                *slot = cursor.saturating_add(1);
            }
        }
    }
    let node_rows_iter = incidence_offsets.iter().skip(1).zip(cursors.iter());
    for (node, (&incidence_row_end, &cursor)) in node_rows_iter.enumerate() {
        if cursor != incidence_row_end {
            return Err(SnapshotError::Corrupt {
                section: "incidence values",
                message: format!(
                    "node {node} has {} extra incidence entries not backed by any hyperedge",
                    incidence_row_end.saturating_sub(cursor)
                ),
            });
        }
    }

    Ok(Hypergraph::from_validated_csr(
        num_nodes,
        Csr::from_parts(edge_offsets, edge_values),
        Csr::from_parts(incidence_offsets, incidence_values),
    ))
}

/// Reads a snapshot from an arbitrary reader (drains it to the end).
pub fn read_snapshot<R: Read>(mut reader: R) -> Result<Hypergraph, SnapshotError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    read_snapshot_bytes(&bytes)
}

/// Reads a snapshot from `path`.
pub fn read_snapshot_file<P: AsRef<Path>>(path: P) -> Result<Hypergraph, SnapshotError> {
    read_snapshot_bytes(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HypergraphBuilder;

    fn figure2() -> Hypergraph {
        HypergraphBuilder::new()
            .with_edge([0u32, 1, 2])
            .with_edge([0, 3, 1])
            .with_edge([4, 5, 0])
            .with_edge([6, 7, 2])
            .build()
            .unwrap()
    }

    fn snapshot_bytes(hypergraph: &Hypergraph) -> Vec<u8> {
        let mut bytes = Vec::new();
        write_snapshot(hypergraph, &mut bytes).unwrap();
        bytes
    }

    #[test]
    fn round_trip_is_identity() {
        let original = figure2();
        let restored = read_snapshot_bytes(&snapshot_bytes(&original)).unwrap();
        assert_eq!(original, restored);
    }

    #[test]
    fn round_trip_with_isolated_nodes_and_singletons() {
        // Node 9 exists (via the edge naming it) and node 5 is isolated only
        // in the sense of low degree; singleton hyperedges are legal.
        let original = HypergraphBuilder::new()
            .with_edge([7u32])
            .with_edge([0u32, 9])
            .with_edge([0u32, 5, 9])
            .build()
            .unwrap();
        let restored = read_snapshot_bytes(&snapshot_bytes(&original)).unwrap();
        assert_eq!(original, restored);
    }

    #[test]
    fn file_round_trip() {
        let original = figure2();
        let path = std::env::temp_dir().join("mochy_snapshot_roundtrip_test.mochy");
        write_snapshot_file(&original, &path).unwrap();
        let restored = read_snapshot_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(original, restored);
    }

    #[test]
    fn header_layout_is_stable() {
        let bytes = snapshot_bytes(&figure2());
        assert_eq!(&bytes[..8], b"MOCHYSNP");
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 1);
        assert_eq!(u32::from_le_bytes(bytes[12..16].try_into().unwrap()), 0);
        assert_eq!(u64::from_le_bytes(bytes[16..24].try_into().unwrap()), 8);
        assert_eq!(u64::from_le_bytes(bytes[24..32].try_into().unwrap()), 4);
        assert_eq!(u64::from_le_bytes(bytes[32..40].try_into().unwrap()), 12);
        let expected = expected_len(8, 4, 12).unwrap();
        assert_eq!(bytes.len() as u64, expected);
    }

    #[test]
    fn checksum_covers_every_byte() {
        let pristine = snapshot_bytes(&figure2());
        for position in 0..pristine.len() - CHECKSUM_LEN {
            let mut corrupted = pristine.clone();
            corrupted[position] ^= 0x01;
            let result = read_snapshot_bytes(&corrupted);
            assert!(
                result.is_err(),
                "flipping byte {position} must not decode cleanly"
            );
        }
    }

    #[test]
    fn count_overflow_is_rejected_without_allocating() {
        let mut bytes = snapshot_bytes(&figure2());
        bytes[32..40].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            read_snapshot_bytes(&bytes),
            Err(SnapshotError::CountOverflow)
        ));
    }
}
