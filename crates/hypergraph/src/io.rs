//! Plain-text readers and writers for hypergraphs.
//!
//! Two formats are supported:
//!
//! 1. **Edge-list format** (the format used by the reference MoCHy code):
//!    one hyperedge per line, members separated by whitespace or commas.
//!    Lines starting with `#` or `%` are comments; blank lines are ignored.
//!
//!    ```text
//!    # three hyperedges
//!    0 1 2
//!    0 1 3
//!    2,4,5
//!    ```
//!
//! 2. **Benson format**: a pair of files, `*-nverts.txt` (one hyperedge size
//!    per line) and `*-simplices.txt` (the concatenated member lists, one
//!    node id per line), as distributed with the datasets used by the paper.
//!
//! In addition, [`read_file_auto`] detects binary `.mochy` snapshots (see
//! [`crate::snapshot`]) by their magic bytes and dispatches accordingly, so
//! every file-loading entry point in the workspace accepts either a text
//! dataset or a snapshot transparently.

use std::io::{BufRead, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::HypergraphBuilder;
use crate::error::HypergraphError;
use crate::graph::{Hypergraph, NodeId};
use crate::snapshot;

/// Reads a hypergraph in edge-list format from a reader.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<Hypergraph, HypergraphError> {
    read_edge_list_with(reader, ReadOptions::default())
}

/// Options controlling [`read_edge_list_with`].
#[derive(Debug, Clone, Copy)]
pub struct ReadOptions {
    /// Remove duplicated hyperedges (paper, Section 4.1). Default `true`.
    pub dedup_hyperedges: bool,
    /// Compact node identifiers to `0..|V|`. Default `false`.
    pub relabel_nodes: bool,
}

impl Default for ReadOptions {
    fn default() -> Self {
        Self {
            dedup_hyperedges: true,
            relabel_nodes: false,
        }
    }
}

/// Reads a hypergraph in edge-list format with explicit [`ReadOptions`].
pub fn read_edge_list_with<R: BufRead>(
    reader: R,
    options: ReadOptions,
) -> Result<Hypergraph, HypergraphError> {
    let mut builder = HypergraphBuilder::new()
        .dedup_hyperedges(options.dedup_hyperedges)
        .relabel_nodes(options.relabel_nodes);
    for (line_index, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut members = Vec::new();
        for token in trimmed.split(|c: char| c.is_whitespace() || c == ',') {
            if token.is_empty() {
                continue;
            }
            let value: u64 = token.parse().map_err(|_| HypergraphError::Parse {
                line: line_index + 1,
                message: format!("invalid node identifier `{token}`"),
            })?;
            if value >= u64::from(u32::MAX) {
                return Err(HypergraphError::NodeIdOverflow { node: value });
            }
            members.push(value as NodeId);
        }
        if members.is_empty() {
            return Err(HypergraphError::Parse {
                line: line_index + 1,
                message: "hyperedge with no members".into(),
            });
        }
        builder.add_edge(members);
    }
    builder.build()
}

/// Reads a hypergraph in edge-list format from a file path.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<Hypergraph, HypergraphError> {
    let file = std::fs::File::open(path)?;
    read_edge_list(std::io::BufReader::new(file))
}

/// Reads a hypergraph from `path`, auto-detecting the format: files that
/// start with the `.mochy` magic bytes are decoded as binary snapshots
/// (bounds-checked `Vec` fill, no per-element parsing); files that start
/// with the shard-manifest magic are loaded as a sharded dataset (every
/// shard snapshot validated against the manifest) and reassembled;
/// everything else is parsed as text edge-list.
///
/// Detection is by content, not extension, so a renamed snapshot still
/// loads and a text file named `foo.mochy` is still parsed as text. (The
/// sharded path does use the manifest's `.shards` file name to locate its
/// sibling shard files.)
pub fn read_file_auto<P: AsRef<Path>>(path: P) -> Result<Hypergraph, HypergraphError> {
    let path = path.as_ref();
    let mut file = std::fs::File::open(path)?;
    let mut prefix = [0u8; snapshot::MAGIC.len()];
    let mut read = 0usize;
    while read < prefix.len() {
        let n = file.read(&mut prefix[read..])?;
        if n == 0 {
            break; // shorter than the magic: cannot be a snapshot
        }
        read += n;
    }
    if read == prefix.len() && prefix == snapshot::MAGIC {
        let mut bytes = prefix.to_vec();
        file.read_to_end(&mut bytes)?;
        return Ok(snapshot::read_snapshot_bytes(&bytes)?);
    }
    if read == prefix.len() && prefix == crate::shard::SHARD_MAGIC {
        drop(file);
        let sharded = crate::shard::load_sharded_manifest(path)?;
        return Ok(sharded.assemble()?);
    }
    // Text: chain the already-consumed prefix back in front of the rest.
    let reader = std::io::BufReader::new((&prefix[..read]).chain(file));
    read_edge_list(reader)
}

/// Writes a hypergraph in edge-list format (one line per hyperedge, members
/// separated by single spaces).
pub fn write_edge_list<W: Write>(hypergraph: &Hypergraph, writer: W) -> std::io::Result<()> {
    let mut writer = BufWriter::new(writer);
    for (_, members) in hypergraph.edges() {
        let mut first = true;
        for v in members {
            if first {
                first = false;
            } else {
                write!(writer, " ")?;
            }
            write!(writer, "{v}")?;
        }
        writeln!(writer)?;
    }
    writer.flush()
}

/// Writes a hypergraph in edge-list format to a file path.
pub fn write_edge_list_file<P: AsRef<Path>>(
    hypergraph: &Hypergraph,
    path: P,
) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(hypergraph, file)
}

/// Reads a hypergraph in Benson's two-file format: `nverts` holds one
/// hyperedge size per line, `simplices` the concatenated member lists.
pub fn read_benson<R1: BufRead, R2: BufRead>(
    nverts: R1,
    simplices: R2,
    options: ReadOptions,
) -> Result<Hypergraph, HypergraphError> {
    let mut sizes = Vec::new();
    for (line_index, line) in nverts.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let size: usize = trimmed.parse().map_err(|_| HypergraphError::Parse {
            line: line_index + 1,
            message: format!("invalid hyperedge size `{trimmed}`"),
        })?;
        sizes.push(size);
    }
    let mut members = Vec::new();
    for (line_index, line) in simplices.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let value: u64 = trimmed.parse().map_err(|_| HypergraphError::Parse {
            line: line_index + 1,
            message: format!("invalid node identifier `{trimmed}`"),
        })?;
        if value >= u64::from(u32::MAX) {
            return Err(HypergraphError::NodeIdOverflow { node: value });
        }
        members.push(value as NodeId);
    }
    let expected: usize = sizes.iter().sum();
    if expected != members.len() {
        return Err(HypergraphError::Parse {
            line: 0,
            message: format!(
                "size file expects {expected} members but simplices file has {}",
                members.len()
            ),
        });
    }
    let mut builder = HypergraphBuilder::new()
        .dedup_hyperedges(options.dedup_hyperedges)
        .relabel_nodes(options.relabel_nodes);
    let mut offset = 0usize;
    for size in sizes {
        builder.add_edge(members[offset..offset + size].iter().copied());
        offset += size;
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn read_simple_edge_list() {
        let input = "# comment\n0 1 2\n\n0 1 3\n2,4,5\n% another comment\n";
        let h = read_edge_list(Cursor::new(input)).unwrap();
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.edge(2), &[2, 4, 5]);
        assert_eq!(h.num_nodes(), 6);
    }

    #[test]
    fn duplicate_edges_removed_by_default() {
        let input = "0 1\n1 0\n2 3\n";
        let h = read_edge_list(Cursor::new(input)).unwrap();
        assert_eq!(h.num_edges(), 2);
    }

    #[test]
    fn duplicate_edges_kept_when_disabled() {
        let input = "0 1\n1 0\n";
        let options = ReadOptions {
            dedup_hyperedges: false,
            relabel_nodes: false,
        };
        let h = read_edge_list_with(Cursor::new(input), options).unwrap();
        assert_eq!(h.num_edges(), 2);
    }

    #[test]
    fn parse_error_reports_line() {
        let input = "0 1\nfoo bar\n";
        let err = read_edge_list(Cursor::new(input)).unwrap_err();
        match err {
            HypergraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn node_id_overflow_detected() {
        let input = format!("0 {}\n", u64::from(u32::MAX));
        let err = read_edge_list(Cursor::new(input)).unwrap_err();
        assert!(matches!(err, HypergraphError::NodeIdOverflow { .. }));
    }

    #[test]
    fn write_then_read_round_trips() {
        let h = HypergraphBuilder::new()
            .with_edge([0u32, 1, 2])
            .with_edge([2u32, 3])
            .with_edge([0u32, 4, 5, 6])
            .build()
            .unwrap();
        let mut buffer = Vec::new();
        write_edge_list(&h, &mut buffer).unwrap();
        let text = String::from_utf8(buffer).unwrap();
        let restored = read_edge_list(Cursor::new(text)).unwrap();
        assert_eq!(h, restored);
    }

    #[test]
    fn file_round_trip() {
        let h = HypergraphBuilder::new()
            .with_edge([0u32, 1])
            .with_edge([1u32, 2, 3])
            .build()
            .unwrap();
        let dir = std::env::temp_dir();
        let path = dir.join("mochy_io_roundtrip_test.txt");
        write_edge_list_file(&h, &path).unwrap();
        let restored = read_edge_list_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(h, restored);
    }

    #[test]
    fn auto_detection_loads_text_and_snapshot_identically() {
        let h = HypergraphBuilder::new()
            .with_edge([0u32, 1, 2])
            .with_edge([2u32, 3])
            .build()
            .unwrap();
        let dir = std::env::temp_dir();
        let text_path = dir.join("mochy_io_auto_text_test.txt");
        let snap_path = dir.join("mochy_io_auto_snap_test.mochy");
        write_edge_list_file(&h, &text_path).unwrap();
        crate::snapshot::write_snapshot_file(&h, &snap_path).unwrap();
        let from_text = read_file_auto(&text_path).unwrap();
        let from_snapshot = read_file_auto(&snap_path).unwrap();
        std::fs::remove_file(&text_path).ok();
        std::fs::remove_file(&snap_path).ok();
        assert_eq!(from_text, h);
        assert_eq!(from_snapshot, h);
    }

    #[test]
    fn auto_detection_surfaces_snapshot_errors_and_short_text() {
        let dir = std::env::temp_dir();
        // A file that starts with the magic but is otherwise garbage must be
        // reported as a snapshot error, not fed to the text parser.
        let path = dir.join("mochy_io_auto_truncated_test.mochy");
        std::fs::write(&path, b"MOCHYSNP").unwrap();
        let err = read_file_auto(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, HypergraphError::Snapshot(_)), "{err:?}");
        // Files shorter than the magic still parse as text.
        let path = dir.join("mochy_io_auto_short_test.txt");
        std::fs::write(&path, b"0 1\n").unwrap();
        let h = read_file_auto(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(h.num_edges(), 1);
    }

    #[test]
    fn auto_detection_loads_sharded_datasets() {
        let h = HypergraphBuilder::new()
            .with_edge([0u32, 1, 2])
            .with_edge([0u32, 3])
            .with_edge([2u32, 3, 4])
            .with_edge([1u32, 4])
            .build()
            .unwrap();
        let stem = std::env::temp_dir().join("mochy_io_auto_sharded_test");
        crate::shard::write_shards(&h, &stem, 2).unwrap();
        let manifest_path = crate::shard::manifest_file_path(&stem);
        let loaded = read_file_auto(&manifest_path).unwrap();
        std::fs::remove_file(&manifest_path).ok();
        for shard in 0..2 {
            std::fs::remove_file(crate::shard::shard_file_path(&stem, shard)).ok();
        }
        assert_eq!(loaded, h);
    }

    #[test]
    fn benson_format() {
        let nverts = "3\n2\n";
        let simplices = "0\n1\n2\n1\n3\n";
        let h = read_benson(
            Cursor::new(nverts),
            Cursor::new(simplices),
            ReadOptions::default(),
        )
        .unwrap();
        assert_eq!(h.num_edges(), 2);
        assert_eq!(h.edge(0), &[0, 1, 2]);
        assert_eq!(h.edge(1), &[1, 3]);
    }

    #[test]
    fn benson_format_size_mismatch() {
        let nverts = "3\n";
        let simplices = "0\n1\n";
        let err = read_benson(
            Cursor::new(nverts),
            Cursor::new(simplices),
            ReadOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, HypergraphError::Parse { .. }));
    }
}
