//! Connectivity structure of a hypergraph.
//!
//! Two nodes are connected if some hyperedge contains both; two hyperedges
//! are connected if they share a node (the adjacency used throughout the
//! paper, Section 2.1). This module computes connected components at both
//! levels, the giant-component fraction, and BFS-based distance statistics
//! (effective diameter), which are the global structural properties that
//! Appendix C.1 of the paper correlates against h-motif significances.

use crate::graph::{Hypergraph, NodeId};

/// The partition of nodes (or hyperedges) into connected components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// `labels[x]` is the component index of item `x`; component indices are
    /// dense in `0..num_components`.
    labels: Vec<usize>,
    /// Size of each component, indexed by component label.
    sizes: Vec<usize>,
}

impl Components {
    /// Number of components.
    pub fn count(&self) -> usize {
        self.sizes.len()
    }

    /// Component label of item `x`.
    pub fn label(&self, x: usize) -> usize {
        self.labels[x]
    }

    /// Sizes of all components, unsorted.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Size of the largest component.
    pub fn giant_size(&self) -> usize {
        self.sizes.iter().copied().max().unwrap_or(0)
    }

    /// Fraction of items belonging to the largest component.
    pub fn giant_fraction(&self) -> f64 {
        let total: usize = self.sizes.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.giant_size() as f64 / total as f64
        }
    }

    /// Whether items `a` and `b` lie in the same component.
    pub fn same_component(&self, a: usize, b: usize) -> bool {
        self.labels[a] == self.labels[b]
    }

    /// The items of the largest component.
    pub fn giant_members(&self) -> Vec<usize> {
        let giant = self
            .sizes
            .iter()
            .enumerate()
            .max_by_key(|&(_, &s)| s)
            .map(|(label, _)| label)
            .unwrap_or(0);
        self.labels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == giant)
            .map(|(x, _)| x)
            .collect()
    }
}

/// A minimal union-find (disjoint-set) structure with path halving and
/// union by size.
#[derive(Debug, Clone)]
struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
    }

    fn into_components(mut self) -> Components {
        let n = self.parent.len();
        let mut label_of_root = vec![usize::MAX; n];
        let mut labels = vec![0usize; n];
        let mut sizes = Vec::new();
        for (x, label) in labels.iter_mut().enumerate() {
            let root = self.find(x);
            if label_of_root[root] == usize::MAX {
                label_of_root[root] = sizes.len();
                sizes.push(0);
            }
            *label = label_of_root[root];
            sizes[label_of_root[root]] += 1;
        }
        Components { labels, sizes }
    }
}

/// Connected components over the *nodes* of the hypergraph: two nodes are in
/// the same component iff they are joined by a chain of hyperedges.
/// Degree-0 nodes each form their own singleton component.
pub fn node_components(hypergraph: &Hypergraph) -> Components {
    let mut uf = UnionFind::new(hypergraph.num_nodes());
    for (_, members) in hypergraph.edges() {
        let first = members[0] as usize;
        for &v in &members[1..] {
            uf.union(first, v as usize);
        }
    }
    uf.into_components()
}

/// Connected components over the *hyperedges* of the hypergraph: two
/// hyperedges are in the same component iff they are joined by a chain of
/// pairwise-overlapping hyperedges. This is connectivity in the projected
/// graph without materializing it.
pub fn edge_components(hypergraph: &Hypergraph) -> Components {
    let mut uf = UnionFind::new(hypergraph.num_edges());
    // Within each node's incidence list, all hyperedges are mutually
    // adjacent; unioning consecutive entries suffices.
    for v in hypergraph.node_ids() {
        let incident = hypergraph.edges_of_node(v);
        for pair in incident.windows(2) {
            uf.union(pair[0] as usize, pair[1] as usize);
        }
    }
    uf.into_components()
}

/// Distance statistics of the node-level structure, computed by BFS over the
/// "co-membership" adjacency (two nodes are adjacent iff some hyperedge
/// contains both).
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceStats {
    /// Number of (ordered) reachable pairs sampled.
    pub reachable_pairs: usize,
    /// Mean shortest-path distance over sampled reachable pairs.
    pub mean_distance: f64,
    /// Maximum observed distance (a lower bound on the diameter).
    pub max_distance: usize,
    /// 90th-percentile distance (the "effective diameter").
    pub effective_diameter: f64,
}

/// Estimates distance statistics by running full BFS from `sources.len()`
/// chosen source nodes. Passing every node gives exact single-source
/// distances from each node; passing a sample gives an estimate (the paper's
/// related work, e.g. [33], uses the same sampling idea for tera-scale
/// graphs).
pub fn distance_stats(hypergraph: &Hypergraph, sources: &[NodeId]) -> DistanceStats {
    let n = hypergraph.num_nodes();
    let mut all_distances: Vec<usize> = Vec::new();
    let mut visited = vec![u32::MAX; n];
    let mut queue: std::collections::VecDeque<NodeId> = std::collections::VecDeque::new();
    for (run, &source) in sources.iter().enumerate() {
        let run = run as u32;
        if (source as usize) >= n {
            continue;
        }
        visited[source as usize] = run;
        let mut dist = vec![0usize; n];
        queue.clear();
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            for &e in hypergraph.edges_of_node(u) {
                for &w in hypergraph.edge(e) {
                    if visited[w as usize] != run {
                        visited[w as usize] = run;
                        dist[w as usize] = dist[u as usize] + 1;
                        all_distances.push(dist[w as usize]);
                        queue.push_back(w);
                    }
                }
            }
        }
    }
    if all_distances.is_empty() {
        return DistanceStats {
            reachable_pairs: 0,
            mean_distance: 0.0,
            max_distance: 0,
            effective_diameter: 0.0,
        };
    }
    all_distances.sort_unstable();
    let reachable_pairs = all_distances.len();
    let sum: usize = all_distances.iter().sum();
    let p90_index = ((reachable_pairs as f64) * 0.9).ceil() as usize - 1;
    DistanceStats {
        reachable_pairs,
        mean_distance: sum as f64 / reachable_pairs as f64,
        max_distance: *all_distances.last().unwrap(),
        effective_diameter: all_distances[p90_index.min(reachable_pairs - 1)] as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HypergraphBuilder;

    fn two_islands() -> Hypergraph {
        HypergraphBuilder::new()
            .with_edge([0u32, 1, 2])
            .with_edge([2u32, 3])
            .with_edge([5u32, 6])
            .with_edge([6u32, 7])
            .build()
            .unwrap()
    }

    #[test]
    fn node_components_finds_islands() {
        let components = node_components(&two_islands());
        // {0,1,2,3}, {5,6,7}, and the isolated node 4.
        assert_eq!(components.count(), 3);
        assert_eq!(components.giant_size(), 4);
        assert!(components.same_component(0, 3));
        assert!(components.same_component(5, 7));
        assert!(!components.same_component(0, 5));
        let sizes: usize = components.sizes().iter().sum();
        assert_eq!(sizes, 8);
    }

    #[test]
    fn edge_components_follow_overlaps() {
        let components = edge_components(&two_islands());
        assert_eq!(components.count(), 2);
        assert!(components.same_component(0, 1));
        assert!(components.same_component(2, 3));
        assert!(!components.same_component(0, 2));
        assert_eq!(components.giant_size(), 2);
    }

    #[test]
    fn giant_fraction_and_members() {
        let components = node_components(&two_islands());
        assert!((components.giant_fraction() - 0.5).abs() < 1e-12);
        let members = components.giant_members();
        assert_eq!(members, vec![0, 1, 2, 3]);
    }

    #[test]
    fn singleton_hypergraph_is_one_component() {
        let h = HypergraphBuilder::new()
            .with_edge([0u32, 1])
            .build()
            .unwrap();
        assert_eq!(node_components(&h).count(), 1);
        assert_eq!(edge_components(&h).count(), 1);
        assert_eq!(edge_components(&h).giant_fraction(), 1.0);
    }

    #[test]
    fn distances_on_a_path() {
        // Path of hyperedges: {0,1}, {1,2}, {2,3} — node distances 0..3.
        let h = HypergraphBuilder::new()
            .with_edge([0u32, 1])
            .with_edge([1u32, 2])
            .with_edge([2u32, 3])
            .build()
            .unwrap();
        let sources: Vec<NodeId> = (0..4).collect();
        let stats = distance_stats(&h, &sources);
        assert_eq!(stats.max_distance, 3);
        // Ordered reachable pairs excluding self-pairs: 4*3 = 12.
        assert_eq!(stats.reachable_pairs, 12);
        // Sum of distances: 2*(1+2+3) + 2*(1+1+2) = 12 + 8 = 20.
        assert!((stats.mean_distance - 20.0 / 12.0).abs() < 1e-12);
        assert!(stats.effective_diameter >= 2.0);
    }

    #[test]
    fn distances_with_no_sources_are_empty() {
        let h = two_islands();
        let stats = distance_stats(&h, &[]);
        assert_eq!(stats.reachable_pairs, 0);
        assert_eq!(stats.mean_distance, 0.0);
    }

    #[test]
    fn distances_ignore_unreachable_islands() {
        let h = two_islands();
        let stats = distance_stats(&h, &[0]);
        // From node 0 we reach 1, 2, 3 only.
        assert_eq!(stats.reachable_pairs, 3);
        assert_eq!(stats.max_distance, 2);
    }
}
