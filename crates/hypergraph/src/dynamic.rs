//! A mutable hypergraph for streaming workloads.
//!
//! [`Hypergraph`] is immutable CSR — ideal for the batch counting hot path,
//! useless for a stream of hyperedge insertions and deletions. A
//! [`DynamicHypergraph`] keeps the same logical structure (sorted member
//! lists, a node → hyperedge incidence index) in mutable form:
//!
//! - **Edge identifiers are monotone and never reused.** Every insertion
//!   gets a fresh id one past the previous maximum; removal leaves a
//!   tombstone. Downstream structures (the projection overlay, the streaming
//!   counter) lean on this invariant: any id seen for the first time is
//!   strictly greater than every id seen before it.
//! - **Member lists stay sorted**, so the hash-free intersection kernels of
//!   [`crate::graph`] (`sorted_intersection_size`, binary-search membership)
//!   keep working unchanged on live edges.
//! - **Incidence lists stay sorted** for free on insertion (new ids are the
//!   largest) and by a binary-search removal on deletion, so the
//!   gather-sort-runlength neighbourhood computation of the projection layer
//!   applies verbatim.

use crate::builder::HypergraphBuilder;
use crate::error::HypergraphError;
use crate::graph::{EdgeId, Hypergraph, NodeId};

/// A mutable hypergraph supporting hyperedge insertion and removal.
///
/// Removal tombstones the edge slot instead of shifting identifiers, so ids
/// handed out by [`DynamicHypergraph::insert_edge`] stay valid names for the
/// lifetime of the structure (dead or alive).
#[derive(Debug, Clone, Default)]
pub struct DynamicHypergraph {
    /// Slot per ever-inserted hyperedge; `None` marks a removed edge.
    edges: Vec<Option<Vec<NodeId>>>,
    /// Per-node incident live hyperedges, sorted ascending.
    incidence: Vec<Vec<EdgeId>>,
    /// Number of live (non-tombstoned) hyperedges.
    live_edges: usize,
}

impl DynamicHypergraph {
    /// An empty dynamic hypergraph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seeds a dynamic hypergraph with the edges of an immutable snapshot;
    /// edge `e` of `hypergraph` keeps the identifier `e`.
    pub fn from_hypergraph(hypergraph: &Hypergraph) -> Self {
        let edges = hypergraph
            .edges()
            .map(|(_, members)| Some(members.to_vec()))
            .collect();
        let incidence = hypergraph
            .node_ids()
            .map(|v| hypergraph.edges_of_node(v).to_vec())
            .collect();
        Self {
            edges,
            incidence,
            live_edges: hypergraph.num_edges(),
        }
    }

    /// Inserts a hyperedge and returns its fresh identifier. Members are
    /// sorted and deduplicated, mirroring [`HypergraphBuilder::add_edge`].
    ///
    /// # Panics
    /// Panics if the member list is empty (hyperedges are non-empty sets).
    pub fn insert_edge<I>(&mut self, members: I) -> EdgeId
    where
        I: IntoIterator<Item = NodeId>,
    {
        let mut members: Vec<NodeId> = members.into_iter().collect();
        members.sort_unstable();
        members.dedup();
        assert!(!members.is_empty(), "hyperedge must have at least one node");
        let id = self.edges.len() as EdgeId;
        let max_node = *members.last().unwrap() as usize;
        if max_node >= self.incidence.len() {
            self.incidence.resize_with(max_node + 1, Vec::new);
        }
        for &v in &members {
            // `id` is larger than every id already present, so a plain push
            // keeps the incidence list sorted.
            self.incidence[v as usize].push(id);
        }
        self.edges.push(Some(members));
        self.live_edges += 1;
        id
    }

    /// Removes hyperedge `e`. Returns `false` (and changes nothing) when `e`
    /// is unknown or already removed.
    pub fn remove_edge(&mut self, e: EdgeId) -> bool {
        let Some(slot) = self.edges.get_mut(e as usize) else {
            return false;
        };
        let Some(members) = slot.take() else {
            return false;
        };
        for &v in &members {
            let list = &mut self.incidence[v as usize];
            if let Ok(position) = list.binary_search(&e) {
                list.remove(position);
            }
        }
        self.live_edges -= 1;
        true
    }

    /// Whether `e` names a live (inserted and not removed) hyperedge.
    #[inline]
    pub fn is_live(&self, e: EdgeId) -> bool {
        matches!(self.edges.get(e as usize), Some(Some(_)))
    }

    /// The members of live hyperedge `e`, sorted ascending; `None` for
    /// removed or never-assigned identifiers.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> Option<&[NodeId]> {
        self.edges.get(e as usize)?.as_deref()
    }

    /// The size of live hyperedge `e` (0 for dead ids).
    #[inline]
    pub fn edge_size(&self, e: EdgeId) -> usize {
        self.edge(e).map_or(0, <[NodeId]>::len)
    }

    /// The live hyperedges containing node `v`, sorted ascending (empty for
    /// out-of-range nodes).
    #[inline]
    pub fn edges_of_node(&self, v: NodeId) -> &[EdgeId] {
        self.incidence
            .get(v as usize)
            .map_or(&[], |list| list.as_slice())
    }

    /// Number of live hyperedges.
    #[inline]
    pub fn num_live_edges(&self) -> usize {
        self.live_edges
    }

    /// Number of edge slots ever allocated (live + tombstoned); equivalently
    /// one past the largest identifier handed out so far.
    #[inline]
    pub fn num_edge_slots(&self) -> usize {
        self.edges.len()
    }

    /// One past the largest node identifier seen so far.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.incidence.len()
    }

    /// Iterator over the identifiers of live hyperedges, ascending.
    pub fn live_edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter_map(|(id, slot)| slot.as_ref().map(|_| id as EdgeId))
    }

    /// The neighbourhood of live hyperedge `e` in the projected graph: every
    /// live hyperedge sharing at least one node with `e`, with overlap sizes,
    /// sorted by neighbour id. Gather-sort-runlength over the incidence
    /// lists, exactly like the one-off lookup of the eager projection.
    pub fn neighborhood(&self, e: EdgeId) -> Vec<(EdgeId, u32)> {
        let Some(members) = self.edge(e) else {
            return Vec::new();
        };
        let gathered: usize = members.iter().map(|&v| self.edges_of_node(v).len()).sum();
        let mut candidates: Vec<EdgeId> = Vec::with_capacity(gathered);
        for &v in members {
            candidates.extend_from_slice(self.edges_of_node(v));
        }
        candidates.sort_unstable();
        let mut neighbors = Vec::new();
        let mut index = 0usize;
        while index < candidates.len() {
            let id = candidates[index];
            let mut run = 1usize;
            while index + run < candidates.len() && candidates[index + run] == id {
                run += 1;
            }
            if id != e {
                neighbors.push((id, run as u32));
            }
            index += run;
        }
        neighbors
    }

    /// Materializes the live edges as an immutable [`Hypergraph`] (edge ids
    /// compacted to `0..live_edges` in ascending id order, duplicates kept).
    ///
    /// # Errors
    /// Returns [`HypergraphError::NoEdges`] when no live edge remains.
    pub fn to_hypergraph(&self) -> Result<Hypergraph, HypergraphError> {
        let mut builder = HypergraphBuilder::with_capacity(self.live_edges);
        for e in self.live_edge_ids() {
            builder.add_edge(self.edge(e).unwrap().iter().copied());
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_assigns_monotone_ids_and_sorts_members() {
        let mut h = DynamicHypergraph::new();
        assert_eq!(h.insert_edge([5u32, 1, 3, 1]), 0);
        assert_eq!(h.insert_edge([2u32, 0]), 1);
        assert_eq!(h.edge(0), Some(&[1u32, 3, 5][..]));
        assert_eq!(h.edge(1), Some(&[0u32, 2][..]));
        assert_eq!(h.num_live_edges(), 2);
        assert_eq!(h.num_nodes(), 6);
    }

    #[test]
    fn incidence_tracks_insert_and_remove() {
        let mut h = DynamicHypergraph::new();
        let a = h.insert_edge([0u32, 1, 2]);
        let b = h.insert_edge([0u32, 3]);
        let c = h.insert_edge([0u32, 1]);
        assert_eq!(h.edges_of_node(0), &[a, b, c]);
        assert_eq!(h.edges_of_node(1), &[a, c]);
        assert!(h.remove_edge(b));
        assert_eq!(h.edges_of_node(0), &[a, c]);
        assert_eq!(h.edges_of_node(3), &[] as &[EdgeId]);
        assert!(!h.remove_edge(b), "double removal is a no-op");
        assert!(!h.is_live(b));
        assert_eq!(h.num_live_edges(), 2);
        // Ids are never reused: the next insertion continues the sequence.
        assert_eq!(h.insert_edge([3u32]), 3);
    }

    #[test]
    fn neighborhood_matches_figure2() {
        let mut h = DynamicHypergraph::new();
        h.insert_edge([0u32, 1, 2]);
        h.insert_edge([0u32, 3, 1]);
        h.insert_edge([4u32, 5, 0]);
        h.insert_edge([6u32, 7, 2]);
        assert_eq!(h.neighborhood(0), vec![(1, 2), (2, 1), (3, 1)]);
        assert_eq!(h.neighborhood(3), vec![(0, 1)]);
        h.remove_edge(1);
        assert_eq!(h.neighborhood(0), vec![(2, 1), (3, 1)]);
        assert_eq!(h.neighborhood(1), Vec::<(EdgeId, u32)>::new());
    }

    #[test]
    fn removing_unknown_or_dead_ids_is_a_strict_noop() {
        // Never-issued ids on an empty hypergraph.
        let mut h = DynamicHypergraph::new();
        assert!(!h.remove_edge(0));
        assert!(!h.remove_edge(EdgeId::MAX));
        assert_eq!(h.num_live_edges(), 0);
        assert_eq!(h.num_edge_slots(), 0);

        // Ids beyond the allocated slots, and tombstoned ids, on a populated
        // one: nothing observable may change.
        let a = h.insert_edge([0u32, 1, 2]);
        let b = h.insert_edge([1u32, 3]);
        h.remove_edge(a);
        let snapshot_edges: Vec<Option<Vec<NodeId>>> = (0..h.num_edge_slots() as EdgeId)
            .map(|e| h.edge(e).map(<[NodeId]>::to_vec))
            .collect();
        let snapshot_incidence: Vec<Vec<EdgeId>> = (0..h.num_nodes() as NodeId)
            .map(|v| h.edges_of_node(v).to_vec())
            .collect();
        for bogus in [a, 2, 3, 100, EdgeId::MAX] {
            assert!(!h.remove_edge(bogus), "id {bogus} must be a no-op");
        }
        assert_eq!(h.num_live_edges(), 1);
        assert!(h.is_live(b));
        for e in 0..h.num_edge_slots() as EdgeId {
            assert_eq!(
                h.edge(e).map(<[NodeId]>::to_vec),
                snapshot_edges[e as usize]
            );
        }
        for v in 0..h.num_nodes() as NodeId {
            assert_eq!(h.edges_of_node(v), snapshot_incidence[v as usize]);
        }
    }

    #[test]
    fn round_trips_through_immutable_hypergraph() {
        let original = HypergraphBuilder::new()
            .with_edge([0u32, 1, 2])
            .with_edge([1u32, 3])
            .with_edge([2u32, 4, 5])
            .build()
            .unwrap();
        let dynamic = DynamicHypergraph::from_hypergraph(&original);
        assert_eq!(dynamic.num_live_edges(), 3);
        assert_eq!(dynamic.to_hypergraph().unwrap(), original);
    }

    #[test]
    fn to_hypergraph_compacts_after_removals() {
        let mut h = DynamicHypergraph::new();
        h.insert_edge([0u32, 1]);
        h.insert_edge([1u32, 2]);
        h.insert_edge([2u32, 3]);
        h.remove_edge(1);
        let compact = h.to_hypergraph().unwrap();
        assert_eq!(compact.num_edges(), 2);
        assert_eq!(compact.edge(0), &[0, 1]);
        assert_eq!(compact.edge(1), &[2, 3]);
    }

    #[test]
    fn empty_after_removals_errors() {
        let mut h = DynamicHypergraph::new();
        let e = h.insert_edge([0u32, 1]);
        h.remove_edge(e);
        assert!(matches!(h.to_hypergraph(), Err(HypergraphError::NoEdges)));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_edge_panics() {
        DynamicHypergraph::new().insert_edge(Vec::<NodeId>::new());
    }
}
