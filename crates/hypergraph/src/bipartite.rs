//! The star expansion (bipartite incidence graph) of a hypergraph.
//!
//! The paper uses the bipartite representation `G' = (V ∪ E, {(v, e) : v ∈ e})`
//! both to randomize hypergraphs with the Chung-Lu model (Section 2.3) and as
//! the input of the network-motif baseline (Section 4.3). Left vertices are
//! the hypergraph's nodes, right vertices are its hyperedges.

use crate::graph::{EdgeId, Hypergraph, NodeId};

/// The bipartite incidence graph of a hypergraph.
///
/// Left vertices (`0..num_left`) correspond to hypergraph nodes; right
/// vertices (`0..num_right`) correspond to hyperedges. Adjacency is stored in
/// both directions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BipartiteGraph {
    left_adjacency: Vec<Vec<u32>>,
    right_adjacency: Vec<Vec<u32>>,
    num_incidences: usize,
}

impl BipartiteGraph {
    /// Builds the star expansion of `hypergraph`.
    pub fn from_hypergraph(hypergraph: &Hypergraph) -> Self {
        let mut left_adjacency = vec![Vec::new(); hypergraph.num_nodes()];
        let mut right_adjacency = vec![Vec::new(); hypergraph.num_edges()];
        for (e, members) in hypergraph.edges() {
            for &v in members {
                left_adjacency[v as usize].push(e);
                right_adjacency[e as usize].push(v);
            }
        }
        let num_incidences = hypergraph.num_incidences();
        Self {
            left_adjacency,
            right_adjacency,
            num_incidences,
        }
    }

    /// Builds a bipartite graph directly from explicit incidence pairs.
    /// Used by the Chung-Lu null model, which samples pairs.
    pub fn from_incidences(
        num_left: usize,
        num_right: usize,
        incidences: &[(NodeId, EdgeId)],
    ) -> Self {
        let mut left_adjacency = vec![Vec::new(); num_left];
        let mut right_adjacency = vec![Vec::new(); num_right];
        for &(v, e) in incidences {
            left_adjacency[v as usize].push(e);
            right_adjacency[e as usize].push(v);
        }
        for list in &mut left_adjacency {
            list.sort_unstable();
            list.dedup();
        }
        for list in &mut right_adjacency {
            list.sort_unstable();
            list.dedup();
        }
        let num_incidences = right_adjacency.iter().map(Vec::len).sum();
        Self {
            left_adjacency,
            right_adjacency,
            num_incidences,
        }
    }

    /// Number of left vertices (hypergraph nodes).
    pub fn num_left(&self) -> usize {
        self.left_adjacency.len()
    }

    /// Number of right vertices (hyperedges).
    pub fn num_right(&self) -> usize {
        self.right_adjacency.len()
    }

    /// Number of bipartite edges (incidences).
    pub fn num_incidences(&self) -> usize {
        self.num_incidences
    }

    /// Right neighbours (hyperedges) of left vertex `v`.
    pub fn edges_of_node(&self, v: NodeId) -> &[u32] {
        &self.left_adjacency[v as usize]
    }

    /// Left neighbours (nodes) of right vertex `e`.
    pub fn nodes_of_edge(&self, e: EdgeId) -> &[u32] {
        &self.right_adjacency[e as usize]
    }

    /// Degree of left vertex `v`.
    pub fn left_degree(&self, v: NodeId) -> usize {
        self.left_adjacency[v as usize].len()
    }

    /// Degree of right vertex `e` (the hyperedge size).
    pub fn right_degree(&self, e: EdgeId) -> usize {
        self.right_adjacency[e as usize].len()
    }

    /// Left-vertex degree sequence.
    pub fn left_degrees(&self) -> Vec<usize> {
        self.left_adjacency.iter().map(Vec::len).collect()
    }

    /// Right-vertex degree sequence.
    pub fn right_degrees(&self) -> Vec<usize> {
        self.right_adjacency.iter().map(Vec::len).collect()
    }

    /// Converts the bipartite graph back into a hypergraph, dropping right
    /// vertices that ended up with no members (these can be produced by the
    /// Chung-Lu model).
    pub fn to_hypergraph(&self) -> Option<Hypergraph> {
        let mut builder = crate::builder::HypergraphBuilder::with_capacity(self.num_right());
        for members in &self.right_adjacency {
            if !members.is_empty() {
                builder.add_edge(members.iter().copied());
            }
        }
        builder.build().ok()
    }

    /// A flat adjacency view of the bipartite graph as a simple undirected
    /// graph: vertices `0..num_left` are nodes, `num_left..num_left+num_right`
    /// are hyperedges. Used by the network-motif baseline.
    pub fn as_simple_graph_adjacency(&self) -> Vec<Vec<u32>> {
        let offset = self.num_left() as u32;
        let mut adjacency = vec![Vec::new(); self.num_left() + self.num_right()];
        for (v, edges) in self.left_adjacency.iter().enumerate() {
            for &e in edges {
                adjacency[v].push(e + offset);
                adjacency[(e + offset) as usize].push(v as u32);
            }
        }
        for list in &mut adjacency {
            list.sort_unstable();
        }
        adjacency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HypergraphBuilder;

    fn sample() -> Hypergraph {
        HypergraphBuilder::new()
            .with_edge([0u32, 1, 2])
            .with_edge([0, 3])
            .with_edge([2, 3])
            .build()
            .unwrap()
    }

    #[test]
    fn star_expansion_dimensions() {
        let h = sample();
        let b = BipartiteGraph::from_hypergraph(&h);
        assert_eq!(b.num_left(), 4);
        assert_eq!(b.num_right(), 3);
        assert_eq!(b.num_incidences(), 7);
    }

    #[test]
    fn adjacency_is_consistent() {
        let h = sample();
        let b = BipartiteGraph::from_hypergraph(&h);
        assert_eq!(b.edges_of_node(0), &[0, 1]);
        assert_eq!(b.nodes_of_edge(0), &[0, 1, 2]);
        assert_eq!(b.left_degree(3), 2);
        assert_eq!(b.right_degree(1), 2);
        assert_eq!(b.left_degrees(), vec![2, 1, 2, 2]);
        assert_eq!(b.right_degrees(), vec![3, 2, 2]);
    }

    #[test]
    fn degrees_match_hypergraph() {
        let h = sample();
        let b = BipartiteGraph::from_hypergraph(&h);
        for v in h.node_ids() {
            assert_eq!(b.left_degree(v), h.node_degree(v));
        }
        for e in h.edge_ids() {
            assert_eq!(b.right_degree(e), h.edge_size(e));
        }
    }

    #[test]
    fn round_trip_to_hypergraph() {
        let h = sample();
        let b = BipartiteGraph::from_hypergraph(&h);
        let restored = b.to_hypergraph().unwrap();
        assert_eq!(restored.num_edges(), h.num_edges());
        for e in h.edge_ids() {
            assert_eq!(restored.edge(e), h.edge(e));
        }
    }

    #[test]
    fn from_incidences_dedups() {
        let b = BipartiteGraph::from_incidences(2, 1, &[(0, 0), (0, 0), (1, 0)]);
        assert_eq!(b.num_incidences(), 2);
        assert_eq!(b.nodes_of_edge(0), &[0, 1]);
    }

    #[test]
    fn empty_edges_dropped_on_conversion() {
        let b = BipartiteGraph::from_incidences(2, 3, &[(0, 0), (1, 0), (0, 2)]);
        let h = b.to_hypergraph().unwrap();
        assert_eq!(h.num_edges(), 2);
    }

    #[test]
    fn simple_graph_adjacency_is_bipartite() {
        let h = sample();
        let b = BipartiteGraph::from_hypergraph(&h);
        let adjacency = b.as_simple_graph_adjacency();
        assert_eq!(adjacency.len(), 7);
        // Node 0 connects to hyperedge-vertices 4 (= 0 + offset) and 5.
        assert_eq!(adjacency[0], vec![4, 5]);
        // Hyperedge-vertex 4 connects back to nodes 0, 1, 2.
        assert_eq!(adjacency[4], vec![0, 1, 2]);
        // No edges within a side.
        for (u, neighbours) in adjacency.iter().enumerate() {
            for &w in neighbours {
                let u_left = u < 4;
                let w_left = (w as usize) < 4;
                assert_ne!(u_left, w_left, "edge within one side of the bipartition");
            }
        }
    }
}
