//! Hypergraph substrate for the MoCHy reproduction.
//!
//! A hypergraph `G = (V, E)` consists of a node set `V` and a set of
//! hyperedges `E`, each of which is a non-empty subset of `V` (Section 2.1 of
//! the paper). This crate provides:
//!
//! - [`Hypergraph`]: an immutable, cache-friendly CSR representation of a
//!   hypergraph together with the node → hyperedge incidence index `E_v`.
//! - [`HypergraphBuilder`]: a mutable builder that validates, sorts, and
//!   deduplicates hyperedges.
//! - [`io`]: plain-text readers/writers compatible with the format used by the
//!   reference MoCHy implementation (one hyperedge per line), with
//!   content-based format auto-detection ([`io::read_file_auto`]).
//! - [`snapshot`]: the versioned, checksummed `.mochy` binary snapshot
//!   format — cold-start loading proportional to I/O, not parsing.
//! - [`shard`]: sharded storage — contiguous hyperedge slices persisted as
//!   per-shard `.mochy` snapshots plus a checksummed manifest, the substrate
//!   of scatter-gather counting.
//! - [`stats`]: summary statistics used in Table 2 of the paper.
//! - [`bipartite`]: the star expansion (bipartite incidence graph) `G'` used
//!   by the null model and the network-motif baseline.
//! - [`csr`]: the flat compressed-sparse-row container backing both the
//!   hypergraph and the projected graph.
//! - [`parallel`]: a scoped thread pool over an atomic chunked work queue,
//!   shared by every parallel MoCHy variant (Section 3.4).
//! - [`dynamic`]: a mutable hypergraph (insert/remove with monotone,
//!   never-reused edge ids) backing the streaming motif counter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bipartite;
pub mod builder;
pub mod components;
pub mod csr;
pub mod distributions;
pub mod dynamic;
pub mod error;
pub mod graph;
pub mod io;
pub mod parallel;
pub mod shard;
pub mod snapshot;
pub mod stats;
pub mod transform;

pub use bipartite::BipartiteGraph;
pub use builder::HypergraphBuilder;
pub use components::{edge_components, node_components, Components, DistanceStats};
pub use csr::Csr;
pub use distributions::EmpiricalDistribution;
pub use dynamic::DynamicHypergraph;
pub use error::HypergraphError;
pub use graph::{EdgeId, Hypergraph, NodeId};
pub use parallel::{default_chunk_size, map_reduce_chunks, ChunkQueue, PoolSaturated, WorkerPool};
pub use shard::{
    edge_slice, load_shard_slice, load_sharded, load_sharded_manifest, manifest_file_path,
    manifest_stem, read_manifest_file, shard_boundaries, shard_file_path, write_shards, ShardError,
    ShardManifest, ShardRecord, ShardedHypergraph,
};
pub use snapshot::{
    read_snapshot, read_snapshot_bytes, read_snapshot_file, write_snapshot, write_snapshot_file,
    SnapshotError,
};
pub use stats::HypergraphStats;
pub use transform::{clique_expansion, dual, WeightedGraph};
