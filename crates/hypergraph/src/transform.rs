//! Structural transformations of hypergraphs.
//!
//! These are the standard constructions used throughout the paper's analysis
//! pipeline and its related work: the *dual* hypergraph (nodes and hyperedges
//! swap roles), the *clique expansion* (the weighted pairwise graph obtained
//! by connecting every pair of nodes that co-occur in a hyperedge), induced
//! sub-hypergraphs, and size/degree filters. They are not part of the MoCHy
//! counting algorithms themselves but are needed by the network-motif
//! baseline (Figure 6), the null-model diagnostics (Appendix D), and the
//! global-property analysis (Appendix C.1).

use crate::builder::HypergraphBuilder;
use crate::error::HypergraphError;
use crate::graph::{EdgeId, Hypergraph, NodeId};

/// The dual hypergraph `G* = (E, V*)`: every hyperedge of `G` becomes a node
/// of `G*`, and every node `v` of `G` with degree ≥ 1 becomes a hyperedge
/// `E_v` of `G*` (the set of hyperedges of `G` that contain `v`).
///
/// Nodes of degree 0 produce no hyperedge (hyperedges must be non-empty).
/// Returns an error only if the input has no incidences at all, which cannot
/// happen for a validly constructed [`Hypergraph`].
pub fn dual(hypergraph: &Hypergraph) -> Result<Hypergraph, HypergraphError> {
    let mut builder = HypergraphBuilder::with_capacity(hypergraph.num_nodes());
    for v in hypergraph.node_ids() {
        let incident = hypergraph.edges_of_node(v);
        if !incident.is_empty() {
            builder.add_edge(incident.iter().copied());
        }
    }
    builder.relabel_nodes(false).build()
}

/// A weighted undirected pairwise graph in adjacency-list form, as produced
/// by [`clique_expansion`].
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedGraph {
    /// Number of vertices.
    num_vertices: usize,
    /// `adjacency[u]` lists `(v, w)` pairs with `v > u` is *not* guaranteed;
    /// both directions are stored so that `adjacency[u]` is the full
    /// neighbourhood of `u`, sorted by neighbour id.
    adjacency: Vec<Vec<(u32, u32)>>,
}

impl WeightedGraph {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// The neighbourhood of `u` as `(neighbour, weight)` pairs, sorted by
    /// neighbour id.
    pub fn neighbors(&self, u: u32) -> &[(u32, u32)] {
        &self.adjacency[u as usize]
    }

    /// Degree of vertex `u`.
    pub fn degree(&self, u: u32) -> usize {
        self.adjacency[u as usize].len()
    }

    /// The weight of edge `{u, v}`, or `None` if absent.
    pub fn weight(&self, u: u32, v: u32) -> Option<u32> {
        let row = &self.adjacency[u as usize];
        row.binary_search_by_key(&v, |&(n, _)| n)
            .ok()
            .map(|i| row[i].1)
    }

    /// Total weight over undirected edges.
    pub fn total_weight(&self) -> u64 {
        self.adjacency
            .iter()
            .flat_map(|row| row.iter().map(|&(_, w)| w as u64))
            .sum::<u64>()
            / 2
    }
}

/// The clique expansion of a hypergraph: vertices are the nodes of `G`, and
/// `{u, v}` is an edge with weight equal to the number of hyperedges
/// containing both `u` and `v` (co-occurrence count).
///
/// This is the graph that the paper argues is *insufficient* for capturing
/// group structure (Section 1), and it is what conventional network-motif
/// analysis operates on; we build it for the baseline comparison.
pub fn clique_expansion(hypergraph: &Hypergraph) -> WeightedGraph {
    let n = hypergraph.num_nodes();
    let mut pair_counts: rustc_hash::FxHashMap<(NodeId, NodeId), u32> =
        rustc_hash::FxHashMap::default();
    for (_, members) in hypergraph.edges() {
        for (a_index, &u) in members.iter().enumerate() {
            for &v in &members[a_index + 1..] {
                *pair_counts.entry((u, v)).or_insert(0) += 1;
            }
        }
    }
    let mut adjacency = vec![Vec::new(); n];
    for (&(u, v), &w) in &pair_counts {
        adjacency[u as usize].push((v, w));
        adjacency[v as usize].push((u, w));
    }
    for row in &mut adjacency {
        row.sort_unstable_by_key(|&(v, _)| v);
    }
    WeightedGraph {
        num_vertices: n,
        adjacency,
    }
}

/// The sub-hypergraph induced by a set of nodes: every hyperedge is
/// intersected with `keep`, and hyperedges that become empty are dropped.
/// Node identifiers are preserved (not compacted).
///
/// Returns `None` if no hyperedge survives.
pub fn induced_by_nodes(hypergraph: &Hypergraph, keep: &[NodeId]) -> Option<Hypergraph> {
    let mut keep_mask = vec![false; hypergraph.num_nodes()];
    for &v in keep {
        if (v as usize) < keep_mask.len() {
            keep_mask[v as usize] = true;
        }
    }
    let mut builder = HypergraphBuilder::with_capacity(hypergraph.num_edges());
    let mut any = false;
    for (_, members) in hypergraph.edges() {
        let filtered: Vec<NodeId> = members
            .iter()
            .copied()
            .filter(|&v| keep_mask[v as usize])
            .collect();
        if !filtered.is_empty() {
            builder.add_edge(filtered);
            any = true;
        }
    }
    if !any {
        return None;
    }
    builder.relabel_nodes(false).build().ok()
}

/// The sub-hypergraph containing only the hyperedges with the given ids.
/// Node identifiers are preserved. Returns `None` if `keep` selects nothing.
pub fn induced_by_edges(hypergraph: &Hypergraph, keep: &[EdgeId]) -> Option<Hypergraph> {
    let mut builder = HypergraphBuilder::with_capacity(keep.len());
    let mut any = false;
    for &e in keep {
        if (e as usize) < hypergraph.num_edges() {
            builder.add_edge(hypergraph.edge(e).iter().copied());
            any = true;
        }
    }
    if !any {
        return None;
    }
    builder.relabel_nodes(false).build().ok()
}

/// Keeps only hyperedges whose size lies in `[min_size, max_size]`.
/// Returns `None` if no hyperedge survives.
pub fn filter_by_size(
    hypergraph: &Hypergraph,
    min_size: usize,
    max_size: usize,
) -> Option<Hypergraph> {
    let keep: Vec<EdgeId> = hypergraph
        .edge_ids()
        .filter(|&e| {
            let s = hypergraph.edge_size(e);
            s >= min_size && s <= max_size
        })
        .collect();
    induced_by_edges(hypergraph, &keep)
}

/// Concatenates the hyperedge lists of two hypergraphs over the same node
/// universe (the result has `max(|V_a|, |V_b|)` nodes). Duplicate hyperedges
/// are retained; deduplicate through a builder if needed.
pub fn union(a: &Hypergraph, b: &Hypergraph) -> Hypergraph {
    let mut builder = HypergraphBuilder::with_capacity(a.num_edges() + b.num_edges());
    for (_, members) in a.edges() {
        builder.add_edge(members.iter().copied());
    }
    for (_, members) in b.edges() {
        builder.add_edge(members.iter().copied());
    }
    builder
        .relabel_nodes(false)
        .build()
        .expect("union of non-empty hypergraphs is non-empty")
}

/// Compacts node identifiers so that only nodes with degree ≥ 1 remain and
/// they are renumbered `0..n` in increasing order of their original id.
/// Returns the compacted hypergraph and the mapping `new -> old`.
pub fn compact_nodes(hypergraph: &Hypergraph) -> (Hypergraph, Vec<NodeId>) {
    let mut mapping: Vec<NodeId> = hypergraph
        .node_ids()
        .filter(|&v| hypergraph.node_degree(v) > 0)
        .collect();
    mapping.sort_unstable();
    let mut inverse = vec![u32::MAX; hypergraph.num_nodes()];
    for (new, &old) in mapping.iter().enumerate() {
        inverse[old as usize] = new as NodeId;
    }
    let mut builder = HypergraphBuilder::with_capacity(hypergraph.num_edges());
    for (_, members) in hypergraph.edges() {
        builder.add_edge(members.iter().map(|&v| inverse[v as usize]));
    }
    let compacted = builder
        .relabel_nodes(false)
        .build()
        .expect("compaction preserves hyperedges");
    (compacted, mapping)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure2() -> Hypergraph {
        HypergraphBuilder::new()
            .with_edge([0u32, 1, 2]) // e1 = {L, K, F}
            .with_edge([0, 1, 3]) // e2 = {L, K, H}
            .with_edge([0, 4, 5]) // e3 = {L, B, G}
            .with_edge([2, 6, 7]) // e4 = {F, S, R}
            .build()
            .unwrap()
    }

    #[test]
    fn dual_swaps_roles() {
        let h = figure2();
        let d = dual(&h).unwrap();
        // The dual has one node per hyperedge of h and one hyperedge per
        // node of h with positive degree (all 8 nodes here).
        assert_eq!(d.num_edges(), 8);
        assert_eq!(d.num_nodes(), 4);
        assert_eq!(d.num_incidences(), h.num_incidences());
        // Node L (id 0) belongs to e1, e2, e3 -> the first dual hyperedge is {0,1,2}.
        assert_eq!(d.edge(0), &[0, 1, 2]);
    }

    #[test]
    fn dual_of_dual_has_original_incidence_count() {
        let h = figure2();
        let dd = dual(&dual(&h).unwrap()).unwrap();
        assert_eq!(dd.num_incidences(), h.num_incidences());
        assert_eq!(dd.num_edges(), h.num_edges());
    }

    #[test]
    fn clique_expansion_weights_are_cooccurrence_counts() {
        let h = figure2();
        let g = clique_expansion(&h);
        assert_eq!(g.num_vertices(), 8);
        // L and K co-occur in e1 and e2.
        assert_eq!(g.weight(0, 1), Some(2));
        assert_eq!(g.weight(1, 0), Some(2));
        // L and F co-occur only in e1.
        assert_eq!(g.weight(0, 2), Some(1));
        // K and S never co-occur.
        assert_eq!(g.weight(1, 6), None);
        // Every 3-node hyperedge contributes 3 pairs; e1/e2 share one pair.
        assert_eq!(g.num_edges(), 11);
        assert_eq!(g.total_weight(), 12);
    }

    #[test]
    fn clique_expansion_neighbors_are_sorted() {
        let g = clique_expansion(&figure2());
        for u in 0..g.num_vertices() as u32 {
            let ns = g.neighbors(u);
            assert!(ns.windows(2).all(|w| w[0].0 < w[1].0));
            assert_eq!(ns.len(), g.degree(u));
        }
    }

    #[test]
    fn induced_by_nodes_drops_empty_edges() {
        let h = figure2();
        // Keep only the nodes of e4 plus K: e1/e2 reduce to {K} and {2}, e3 vanishes.
        let sub = induced_by_nodes(&h, &[1, 2, 6, 7]).unwrap();
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(sub.edge(2), &[2, 6, 7]);
    }

    #[test]
    fn induced_by_nodes_empty_selection_is_none() {
        let h = figure2();
        assert!(induced_by_nodes(&h, &[]).is_none());
    }

    #[test]
    fn induced_by_edges_selects_edges() {
        let h = figure2();
        let sub = induced_by_edges(&h, &[0, 3]).unwrap();
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(sub.edge(0), h.edge(0));
        assert_eq!(sub.edge(1), h.edge(3));
        assert!(induced_by_edges(&h, &[]).is_none());
    }

    #[test]
    fn filter_by_size_keeps_matching_edges() {
        let mut builder = HypergraphBuilder::new();
        builder.add_edge([0u32, 1]);
        builder.add_edge([0u32, 1, 2]);
        builder.add_edge([0u32, 1, 2, 3]);
        let h = builder.build().unwrap();
        let filtered = filter_by_size(&h, 3, 3).unwrap();
        assert_eq!(filtered.num_edges(), 1);
        assert_eq!(filtered.edge(0).len(), 3);
        assert!(filter_by_size(&h, 10, 20).is_none());
    }

    #[test]
    fn union_concatenates_edges() {
        let a = HypergraphBuilder::new()
            .with_edge([0u32, 1])
            .build()
            .unwrap();
        let b = HypergraphBuilder::new()
            .with_edge([1u32, 2])
            .build()
            .unwrap();
        let u = union(&a, &b);
        assert_eq!(u.num_edges(), 2);
        assert_eq!(u.num_nodes(), 3);
    }

    #[test]
    fn compact_nodes_renumbers_densely() {
        let h = HypergraphBuilder::new()
            .with_edge([3u32, 9])
            .with_edge([9u32, 20])
            .relabel_nodes(false)
            .build()
            .unwrap();
        let (compacted, mapping) = compact_nodes(&h);
        assert_eq!(compacted.num_nodes(), 3);
        assert_eq!(mapping, vec![3, 9, 20]);
        assert_eq!(compacted.edge(0), &[0, 1]);
        assert_eq!(compacted.edge(1), &[1, 2]);
        // Degrees are preserved under the relabelling.
        assert_eq!(compacted.node_degree(1), h.node_degree(9));
    }
}
